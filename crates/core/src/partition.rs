//! Chunked-parallel analysis over segment-indexed traces.
//!
//! Billion-event captures make the `psim analyze` pipeline — one streaming
//! profile pass plus one engine pass per persistency model — decode the
//! same bytes N+1 times on one core. This module splits the work across a
//! worker pool while keeping every result **bit-identical to the
//! sequential engines for any worker count**:
//!
//! - **Decode-parallel feed** ([`with_source`], [`analyze_full`]): the
//!   trace's segment index (see `docs/mptrace2.md`) lets independent
//!   decoders start mid-file; workers claim chunks in order but decode
//!   them *out of order* into a bounded pool of recycled event slabs,
//!   and each consumer walks the reassembled in-order stream — the
//!   *exact* sequential event sequence — so the engines themselves need
//!   no change and no stitching argument. A slow chunk never stalls the
//!   workers behind it: back-pressure comes only from the slab pool.
//! - **Model-parallel analysis** ([`analyze_full`]): the per-model engine
//!   passes are independent given the same stream; each model consumes the
//!   shared decoded chunks block-at-a-time on its own thread. Chunks are
//!   decoded once, reference-counted, and recycled as the slowest
//!   consumer passes them. With one worker the same sharing holds on one
//!   thread: each chunk is decoded once and pushed through the profile
//!   stitcher and every model's incremental engine run.
//! - **Chunk-parallel profiling** ([`profile_chunked`]): trace profiling
//!   *does* compose across arbitrary cuts. Per-chunk partial profiles
//!   carry a per-thread open-epoch frontier (persists not yet closed by a
//!   barrier) plus the in-chunk order of barrier closes; stitching folds
//!   each chunk's frontier into the next so the merged `epoch_sizes`
//!   vector is element-for-element the sequential one. See DESIGN.md §2b
//!   for why the timing engine's level recurrence does *not* compose this
//!   way (coalescing legality compares absolute levels across the cut),
//!   which is exactly why the engines parallelize over decode and models
//!   instead of over chunks.
//!
//! The pipeline degrades gracefully: one chunk, one worker, or an
//! unindexed file all fall back to plain sequential streaming with no
//! threads spawned.

use crate::timing::{Analyzer, TimingReport};
use crate::AnalysisConfig;
use mem_trace::mmapio::MappedTrace;
use mem_trace::profile::TraceProfile;
use mem_trace::{Event, EventSource, Op, Trace};
use obsv::{series, tracefmt};
use std::collections::BTreeMap;
use std::io;
use std::sync::{Arc, Condvar, Mutex};

/// Timeline track group (`pid`) for the chunked analysis pipeline:
/// decode workers, per-model analyze lanes, and the profile stitcher.
/// Distinct from the serve harness's per-model pids (1..=5).
const ANALYZE_PID: u64 = 10;

/// Records one decoded chunk on the analysis timeline/series (wall
/// clock — the pipeline has no virtual clock). `t0`/`t1` bracket the
/// decode; `tid` is the worker's timeline lane.
fn trace_chunk(tid: u64, name: &str, t0: f64, t1: f64, chunk: usize, events: usize) {
    if tracefmt::recording() {
        tracefmt::span(
            ANALYZE_PID,
            tid,
            name,
            t0,
            t1 - t0,
            &[("chunk", chunk.to_string()), ("events", events.to_string())],
        );
    }
    if series::active() {
        series::add("analyze.win.chunks", t1 as u64, 1);
        series::add("analyze.win.events", t1 as u64, events as u64);
    }
}

/// `tracefmt::now_ns` only when some time-resolved sink is live, else
/// 0.0 (avoids the clock read on untraced hot paths).
fn trace_now() -> f64 {
    if tracefmt::recording() || series::active() {
        tracefmt::now_ns()
    } else {
        0.0
    }
}

/// A trace that can be decoded as independent, concatenable chunks.
///
/// Chunk `i` must yield exactly the events `[start_i, start_{i+1})` of the
/// underlying sequential stream; concatenating chunks `0..chunk_count()`
/// in order reproduces it exactly.
pub trait ChunkFeed: Sync {
    /// Number of threads in the trace.
    fn thread_count(&self) -> u32;

    /// Number of chunks (0 only for empty in-memory feeds).
    fn chunk_count(&self) -> usize;

    /// Appends chunk `i`'s events to `out`.
    ///
    /// # Errors
    ///
    /// Returns decode/I-O errors from the underlying bytes.
    fn decode_chunk(&self, i: usize, out: &mut Vec<Event>) -> io::Result<()>;
}

impl ChunkFeed for MappedTrace {
    fn thread_count(&self) -> u32 {
        MappedTrace::thread_count(self)
    }

    fn chunk_count(&self) -> usize {
        self.segment_count()
    }

    fn decode_chunk(&self, i: usize, out: &mut Vec<Event>) -> io::Result<()> {
        // One batched fill: the slab decoder reserves the exact segment
        // length and decodes it in a single tight loop.
        self.segment_source(i).fill_slab(out, usize::MAX).map(|_| ())
    }
}

/// [`ChunkFeed`] over an in-memory [`Trace`], cut every `chunk_events`
/// events — the differential-test harness for the chunked pipeline, and
/// the fallback when a capture was never serialized.
#[derive(Debug, Clone, Copy)]
pub struct TraceChunks<'a> {
    trace: &'a Trace,
    chunk_events: usize,
}

impl<'a> TraceChunks<'a> {
    /// Chunks `trace` every `chunk_events` events.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_events == 0`.
    pub fn new(trace: &'a Trace, chunk_events: usize) -> Self {
        assert!(chunk_events > 0, "chunk_events must be positive");
        TraceChunks { trace, chunk_events }
    }
}

impl ChunkFeed for TraceChunks<'_> {
    fn thread_count(&self) -> u32 {
        self.trace.thread_count()
    }

    fn chunk_count(&self) -> usize {
        self.trace.events().len().div_ceil(self.chunk_events)
    }

    fn decode_chunk(&self, i: usize, out: &mut Vec<Event>) -> io::Result<()> {
        let events = self.trace.events();
        let start = i * self.chunk_events;
        let end = (start + self.chunk_events).min(events.len());
        out.extend_from_slice(&events[start..end]);
        Ok(())
    }
}

/// Sequential [`EventSource`] over a feed: decodes chunks one at a time on
/// the calling thread. The no-threads fallback, and the reference the
/// parallel paths must match bit-for-bit.
struct SeqSource<'a, F: ?Sized> {
    feed: &'a F,
    next_chunk: usize,
    buf: Vec<Event>,
    idx: usize,
}

impl<'a, F: ChunkFeed + ?Sized> SeqSource<'a, F> {
    fn new(feed: &'a F) -> Self {
        SeqSource { feed, next_chunk: 0, buf: Vec::new(), idx: 0 }
    }
}

impl<F: ChunkFeed + ?Sized> EventSource for SeqSource<'_, F> {
    fn thread_count(&self) -> u32 {
        self.feed.thread_count()
    }

    fn next_event(&mut self) -> io::Result<Option<Event>> {
        loop {
            if self.idx < self.buf.len() {
                let e = self.buf[self.idx];
                self.idx += 1;
                return Ok(Some(e));
            }
            if self.next_chunk >= self.feed.chunk_count() {
                return Ok(None);
            }
            self.buf.clear();
            self.idx = 0;
            self.feed.decode_chunk(self.next_chunk, &mut self.buf)?;
            self.next_chunk += 1;
        }
    }

    fn fill_slab(&mut self, out: &mut Vec<Event>, max: usize) -> io::Result<usize> {
        let mut n = 0;
        while n < max {
            if self.idx < self.buf.len() {
                let take = (self.buf.len() - self.idx).min(max - n);
                out.extend_from_slice(&self.buf[self.idx..self.idx + take]);
                self.idx += take;
                n += take;
                continue;
            }
            if self.next_chunk >= self.feed.chunk_count() {
                break;
            }
            self.buf.clear();
            self.idx = 0;
            self.feed.decode_chunk(self.next_chunk, &mut self.buf)?;
            self.next_chunk += 1;
        }
        Ok(n)
    }
}

/// Extra slab slots beyond the structural minimum (one per decode worker
/// in flight plus one held per consumer). Bounds resident decoded memory
/// to `(workers + consumers + WINDOW_SLACK) · chunk_events` events
/// however unbalanced the consumers are.
const WINDOW_SLACK: usize = 2;

/// One decoded chunk awaiting consumption.
struct Slot {
    data: Arc<Vec<Event>>,
    /// Active consumers that have not taken this chunk yet.
    remaining: usize,
}

struct FeedState {
    /// Next chunk index no decode worker has claimed.
    next_claim: usize,
    /// Decoded chunks not yet consumed by every active consumer.
    ready: BTreeMap<usize, Slot>,
    /// Next chunk each consumer needs (`usize::MAX` = finished).
    consumer_pos: Vec<usize>,
    /// Consumers not yet finished.
    active: usize,
    /// Sticky first decode failure; consumers convert it back to an error.
    error: Option<(io::ErrorKind, String)>,
    /// Recycled event slabs awaiting reuse by a decode worker.
    free: Vec<Vec<Event>>,
    /// Slabs in flight, ready, or held by consumers — everything claimed
    /// from the pool and not yet back in `free`.
    outstanding: usize,
}

/// Shared decode pool between out-of-order decode workers and in-order
/// consumers.
///
/// Workers claim chunk indices sequentially but decode and publish them
/// in whatever order they finish; the only back-pressure is the slab pool
/// (`pool_cap`), not the consumers' positions. Deadlock-freedom: claims
/// are sequential, so whenever the slowest consumer needs chunk `f`,
/// every ready chunk below `f` has already been taken by all active
/// consumers (they advanced past it) and recycled — hence at most
/// `consumers` held slabs and `workers` in-flight slabs are outstanding,
/// and `pool_cap > workers + consumers` leaves a slab free to claim `f`.
struct Feed<'a, F: ?Sized> {
    feed: &'a F,
    n_chunks: usize,
    pool_cap: usize,
    state: Mutex<FeedState>,
    cond: Condvar,
}

impl<'a, F: ChunkFeed + ?Sized> Feed<'a, F> {
    fn new(feed: &'a F, consumers: usize, workers: usize) -> Self {
        Feed {
            feed,
            n_chunks: feed.chunk_count(),
            pool_cap: workers + consumers + WINDOW_SLACK,
            state: Mutex::new(FeedState {
                next_claim: 0,
                ready: BTreeMap::new(),
                consumer_pos: vec![0; consumers],
                active: consumers,
                error: None,
                free: Vec::new(),
                outstanding: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Decode-worker loop: claim the next chunk and a recycled slab,
    /// decode out-of-order, publish. Exits when chunks run out, every
    /// consumer finished, or a decode failed. `worker` only labels this
    /// loop's timeline lane.
    fn decode_loop(&self, worker: usize) {
        let tid = worker as u64 + 1;
        if tracefmt::recording() {
            tracefmt::name_process(ANALYZE_PID, "analyze");
            tracefmt::name_thread(ANALYZE_PID, tid, &format!("decode {worker}"));
        }
        loop {
            let (i, mut buf) = {
                let mut st = self.state.lock().unwrap();
                loop {
                    if st.error.is_some() || st.next_claim >= self.n_chunks || st.active == 0 {
                        obsv::flush();
                        return;
                    }
                    if st.outstanding < self.pool_cap {
                        let i = st.next_claim;
                        st.next_claim += 1;
                        st.outstanding += 1;
                        let buf = st.free.pop().unwrap_or_default();
                        break (i, buf);
                    }
                    st = self.cond.wait(st).unwrap();
                }
            };
            buf.clear();
            let t0 = trace_now();
            let res = self.feed.decode_chunk(i, &mut buf);
            if res.is_ok() {
                trace_chunk(tid, "decode", t0, trace_now(), i, buf.len());
            }
            let mut st = self.state.lock().unwrap();
            match res {
                Ok(()) if st.active > 0 => {
                    let remaining = st.active;
                    st.ready.insert(i, Slot { data: Arc::new(buf), remaining });
                }
                Ok(()) => {
                    // Every consumer left while we decoded; recycle.
                    st.outstanding -= 1;
                    st.free.push(buf);
                }
                Err(e) => {
                    st.error = Some((e.kind(), e.to_string()));
                    st.outstanding -= 1;
                }
            }
            drop(st);
            self.cond.notify_all();
        }
    }
}

/// Consumer-side operations need no decoding, so they stay available on
/// cursors whose `Drop` cannot name the [`ChunkFeed`] bound.
impl<F: ?Sized> Feed<'_, F> {
    /// Blocks until chunk `i` is decoded and takes consumer `me`'s
    /// reference to it. The last taker receives the slot's own `Arc`, so
    /// the final [`release`](Feed::release) can reclaim the slab.
    fn take(&self, me: usize, i: usize) -> io::Result<Arc<Vec<Event>>> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some((kind, msg)) = &st.error {
                return Err(io::Error::new(*kind, msg.clone()));
            }
            if let Some(slot) = st.ready.get_mut(&i) {
                slot.remaining -= 1;
                let data = if slot.remaining == 0 {
                    st.ready.remove(&i).expect("slot present").data
                } else {
                    Arc::clone(&slot.data)
                };
                st.consumer_pos[me] = i + 1;
                drop(st);
                self.cond.notify_all();
                return Ok(data);
            }
            st = self.cond.wait(st).unwrap();
        }
    }

    /// Returns a consumer's chunk reference. The last holder recycles the
    /// slab into the free pool, unblocking decode workers.
    ///
    /// The `try_unwrap` runs under the state lock: concurrent releases of
    /// the same chunk are serialized, so exactly one of them observes a
    /// unique `Arc` and performs the recycle.
    fn release(&self, data: Arc<Vec<Event>>) {
        let mut st = self.state.lock().unwrap();
        if let Ok(buf) = Arc::try_unwrap(data) {
            st.outstanding -= 1;
            st.free.push(buf);
            drop(st);
            self.cond.notify_all();
        }
    }

    /// Marks consumer `me` finished, releasing its claim on every chunk it
    /// has not consumed so the pool keeps draining for the others.
    fn finish(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        let pos = st.consumer_pos[me];
        if pos == usize::MAX {
            return;
        }
        st.consumer_pos[me] = usize::MAX;
        st.active -= 1;
        let stale: Vec<usize> =
            st.ready.range(pos..).map(|(&i, _)| i).collect();
        for i in stale {
            let slot = st.ready.get_mut(&i).unwrap();
            slot.remaining -= 1;
            if slot.remaining == 0 {
                let slot = st.ready.remove(&i).expect("slot present");
                if let Ok(buf) = Arc::try_unwrap(slot.data) {
                    st.outstanding -= 1;
                    st.free.push(buf);
                }
            }
        }
        drop(st);
        self.cond.notify_all();
    }
}

/// In-order consumer cursor over a [`Feed`]; holds at most one chunk at a
/// time, recycling it into the slab pool before taking the next, and
/// unregisters itself on drop so early exits (errors) cannot stall the
/// other consumers.
struct Cursor<'a, 'f, F: ?Sized> {
    fd: &'a Feed<'f, F>,
    me: usize,
    next_chunk: usize,
    cur: Option<Arc<Vec<Event>>>,
    idx: usize,
}

impl<'a, 'f, F: ?Sized> Cursor<'a, 'f, F> {
    fn new(fd: &'a Feed<'f, F>, me: usize) -> Self {
        Cursor { fd, me, next_chunk: 0, cur: None, idx: 0 }
    }

    /// Returns the held chunk (if any) to the slab pool.
    fn release_cur(&mut self) {
        if let Some(data) = self.cur.take() {
            self.fd.release(data);
        }
    }

    /// Releases the held chunk and pulls the next one as a borrowed slice,
    /// or `None` at end of stream.
    fn next_chunk_ref(&mut self) -> io::Result<Option<&[Event]>> {
        self.release_cur();
        if self.next_chunk >= self.fd.n_chunks {
            self.fd.finish(self.me);
            return Ok(None);
        }
        let data = self.fd.take(self.me, self.next_chunk)?;
        self.next_chunk += 1;
        self.idx = 0;
        Ok(Some(self.cur.insert(data).as_slice()))
    }
}

impl<F: ChunkFeed + ?Sized> EventSource for Cursor<'_, '_, F> {
    fn thread_count(&self) -> u32 {
        self.fd.feed.thread_count()
    }

    fn next_event(&mut self) -> io::Result<Option<Event>> {
        loop {
            if let Some(cur) = &self.cur {
                if self.idx < cur.len() {
                    let e = cur[self.idx];
                    self.idx += 1;
                    return Ok(Some(e));
                }
            }
            if self.next_chunk_ref()?.is_none() {
                return Ok(None);
            }
        }
    }

    fn fill_slab(&mut self, out: &mut Vec<Event>, max: usize) -> io::Result<usize> {
        let mut n = 0;
        while n < max {
            if let Some(cur) = &self.cur {
                if self.idx < cur.len() {
                    let take = (cur.len() - self.idx).min(max - n);
                    out.extend_from_slice(&cur[self.idx..self.idx + take]);
                    self.idx += take;
                    n += take;
                    continue;
                }
            }
            if self.next_chunk_ref()?.is_none() {
                break;
            }
        }
        Ok(n)
    }
}

impl<F: ?Sized> Drop for Cursor<'_, '_, F> {
    fn drop(&mut self) {
        self.release_cur();
        self.fd.finish(self.me);
    }
}

/// Runs `consume` against the feed's reassembled sequential event stream,
/// decoding chunks on up to `workers` threads ahead of the consumer.
///
/// The stream handed to `consume` is *exactly* the sequential one — same
/// events, same order, for any `workers` — so any single-pass analysis
/// (the DAG builder, the buffer simulator) parallelizes its decode without
/// changing its own logic. With one worker or one chunk no threads are
/// spawned.
pub fn with_source<F, R>(
    feed: &F,
    workers: usize,
    consume: impl FnOnce(&mut dyn EventSource) -> R,
) -> R
where
    F: ChunkFeed + ?Sized,
{
    let n_chunks = feed.chunk_count();
    if workers <= 1 || n_chunks <= 1 {
        return consume(&mut SeqSource::new(feed));
    }
    let fd = Feed::new(feed, 1, workers);
    std::thread::scope(|s| {
        for w in 0..workers.min(n_chunks) {
            let fd = &fd;
            s.spawn(move || fd.decode_loop(w));
        }
        let mut cursor = Cursor::new(&fd, 0);
        consume(&mut cursor)
    })
}

/// Per-chunk partial [`TraceProfile`]: everything a chunk contributes,
/// with the epoch structure split into an order-preserving close list and
/// a per-thread open frontier so chunks stitch exactly.
struct ChunkProfile {
    /// All scalar counters (epoch_sizes left empty).
    counts: TraceProfile,
    /// Barrier/sync closes in chunk event order: `(thread, persists since
    /// that thread's previous close inside this chunk)`.
    closes: Vec<(u32, u64)>,
    /// Per-thread persists after the thread's last close in this chunk
    /// (all of its persists, if it closed nothing here).
    open_tail: Vec<u64>,
}

impl ChunkProfile {
    fn of_events(events: &[Event], nthreads: u32) -> io::Result<Self> {
        let mut p = TraceProfile::default();
        let mut closes = Vec::new();
        let mut open = vec![0u64; nthreads as usize];
        for e in events {
            p.events += 1;
            let t = e.thread.index();
            if t >= open.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "event names a thread outside the trace's thread count",
                ));
            }
            match e.op {
                Op::Load { .. } => p.loads += 1,
                Op::Store { .. } => p.stores += 1,
                Op::Rmw { .. } => {
                    p.rmws += 1;
                    p.loads += 1;
                    p.stores += 1;
                }
                Op::PersistBarrier => {
                    p.persist_barriers += 1;
                    closes.push((t as u32, open[t]));
                    open[t] = 0;
                }
                Op::MemBarrier => p.mem_barriers += 1,
                Op::NewStrand => p.strands += 1,
                Op::PersistSync => {
                    p.syncs += 1;
                    closes.push((t as u32, open[t]));
                    open[t] = 0;
                }
                Op::WorkEnd { .. } => p.work_items += 1,
                Op::PAlloc { .. } | Op::PFree { .. } | Op::WorkBegin { .. } => {}
            }
            if e.op.is_persist() {
                p.persists += 1;
                open[t] += 1;
            }
        }
        Ok(ChunkProfile { counts: p, closes, open_tail: open })
    }
}

/// Folds [`ChunkProfile`]s, in chunk order, into the exact sequential
/// [`TraceProfile`].
///
/// `carry[t]` is thread `t`'s open-epoch frontier entering the next chunk.
/// A chunk's first close for a thread absorbs the carry (the epoch began
/// in an earlier chunk); later closes are fully chunk-local, and the
/// chunk's `open_tail` refills the carry. Because closes are replayed in
/// chunk event order and chunks in index order, the `epoch_sizes` vector
/// comes out element-for-element identical to the one-pass profile —
/// including the final trailing epochs, closed in thread-id order.
struct ProfileStitcher {
    p: TraceProfile,
    carry: Vec<u64>,
}

impl ProfileStitcher {
    fn new(nthreads: u32) -> Self {
        ProfileStitcher { p: TraceProfile::default(), carry: vec![0; nthreads as usize] }
    }

    fn push(&mut self, c: &ChunkProfile) {
        self.p.events += c.counts.events;
        self.p.loads += c.counts.loads;
        self.p.stores += c.counts.stores;
        self.p.rmws += c.counts.rmws;
        self.p.persists += c.counts.persists;
        self.p.persist_barriers += c.counts.persist_barriers;
        self.p.mem_barriers += c.counts.mem_barriers;
        self.p.strands += c.counts.strands;
        self.p.syncs += c.counts.syncs;
        self.p.work_items += c.counts.work_items;
        for &(t, n) in &c.closes {
            // First close of `t` in this chunk absorbs the carried-in
            // frontier; carry is zero for the rest.
            let size = self.carry[t as usize] + n;
            self.carry[t as usize] = 0;
            self.p.epoch_sizes.push(size);
        }
        for (carry, tail) in self.carry.iter_mut().zip(&c.open_tail) {
            *carry += tail;
        }
    }

    fn finish(mut self) -> TraceProfile {
        for open in self.carry {
            if open > 0 {
                self.p.epoch_sizes.push(open);
            }
        }
        self.p
    }
}

/// Profiles the feed with chunks decoded *and profiled* in parallel,
/// producing exactly [`TraceProfile::of_source`]'s sequential answer
/// (same `epoch_sizes`, same order) for any worker count.
///
/// # Errors
///
/// Propagates decode errors and the sequential profiler's
/// thread-out-of-range `InvalidData`.
pub fn profile_chunked<F>(feed: &F, workers: usize) -> io::Result<TraceProfile>
where
    F: ChunkFeed + ?Sized,
{
    let n_chunks = feed.chunk_count();
    let nthreads = feed.thread_count();
    if workers <= 1 || n_chunks <= 1 {
        return TraceProfile::of_source(SeqSource::new(feed));
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let parts: Mutex<Vec<Option<ChunkProfile>>> =
        Mutex::new((0..n_chunks).map(|_| None).collect());
    let first_err: Mutex<Option<io::Error>> = Mutex::new(None);
    std::thread::scope(|s| {
        for w in 0..workers.min(n_chunks) {
            let (next, parts, first_err) = (&next, &parts, &first_err);
            s.spawn(move || {
                let tid = 200 + w as u64;
                if tracefmt::recording() {
                    tracefmt::name_process(ANALYZE_PID, "analyze");
                    tracefmt::name_thread(ANALYZE_PID, tid, &format!("profile {w}"));
                }
                let mut buf = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n_chunks || first_err.lock().unwrap().is_some() {
                        obsv::flush();
                        return;
                    }
                    buf.clear();
                    let t0 = trace_now();
                    let part = feed
                        .decode_chunk(i, &mut buf)
                        .and_then(|()| ChunkProfile::of_events(&buf, nthreads));
                    match part {
                        Ok(p) => {
                            trace_chunk(tid, "profile-chunk", t0, trace_now(), i, buf.len());
                            parts.lock().unwrap()[i] = Some(p)
                        }
                        Err(e) => {
                            let mut fe = first_err.lock().unwrap();
                            if fe.is_none() {
                                *fe = Some(e);
                            }
                            obsv::flush();
                            return;
                        }
                    }
                }
            });
        }
    });
    if let Some(e) = first_err.into_inner().unwrap() {
        return Err(e);
    }
    let mut stitcher = ProfileStitcher::new(nthreads);
    for part in parts.into_inner().unwrap() {
        stitcher.push(&part.expect("no error, so every chunk profiled"));
    }
    Ok(stitcher.finish())
}

/// One shared-decode parallel pass producing the trace profile and one
/// [`TimingReport`] per config — everything `psim analyze` computes.
///
/// Chunks are decoded once by up to `workers` threads; each config's
/// engine pass and the profile stitcher consume them concurrently from a
/// bounded in-order window. Results are bit-identical to running
/// [`TraceProfile::of_source`] and [`crate::timing::analyze_source`]
/// sequentially, for any `workers`.
///
/// # Errors
///
/// Propagates decode/analysis errors (first error wins).
pub fn analyze_full<F>(
    feed: &F,
    configs: &[AnalysisConfig],
    workers: usize,
) -> io::Result<(TraceProfile, Vec<TimingReport>)>
where
    F: ChunkFeed + ?Sized,
{
    let n_chunks = feed.chunk_count();
    let nthreads = feed.thread_count();
    if workers <= 1 || n_chunks <= 1 {
        // Shared-decode sequential pass: each chunk is decoded *once* and
        // pushed through the profile stitcher and every config's
        // incremental engine run, instead of re-decoding the trace once
        // per consumer.
        let mut analyzers: Vec<Analyzer> = configs.iter().map(|_| Analyzer::new()).collect();
        let mut runs: Vec<_> = analyzers
            .iter_mut()
            .zip(configs)
            .map(|(a, config)| a.begin(config, nthreads))
            .collect();
        let mut stitcher = ProfileStitcher::new(nthreads);
        let mut buf = Vec::new();
        if tracefmt::recording() {
            tracefmt::name_process(ANALYZE_PID, "analyze");
            tracefmt::name_thread(ANALYZE_PID, 0, "sequential");
        }
        for i in 0..n_chunks {
            buf.clear();
            let t0 = trace_now();
            feed.decode_chunk(i, &mut buf)?;
            stitcher.push(&ChunkProfile::of_events(&buf, nthreads)?);
            for run in &mut runs {
                run.push_events(&buf)?;
            }
            // One span per chunk covering decode + profile + every
            // engine pass (the shared-decode path has no separate lanes).
            trace_chunk(0, "chunk", t0, trace_now(), i, buf.len());
        }
        let reports = runs.into_iter().map(|run| run.finish()).collect();
        return Ok((stitcher.finish(), reports));
    }
    let fd = Feed::new(feed, configs.len() + 1, workers);
    std::thread::scope(|s| {
        for w in 0..workers.min(n_chunks) {
            let fd = &fd;
            s.spawn(move || fd.decode_loop(w));
        }
        let model_handles: Vec<_> = configs
            .iter()
            .enumerate()
            .map(|(k, config)| {
                let fd = &fd;
                s.spawn(move || {
                    // Analyze lanes sit above the decode lanes (tid 100+)
                    // so Perfetto groups them visibly apart.
                    let tid = 100 + k as u64;
                    if tracefmt::recording() {
                        tracefmt::name_thread(
                            ANALYZE_PID,
                            tid,
                            &format!("analyze {}", config.model.name()),
                        );
                    }
                    let mut analyzer = Analyzer::new();
                    let mut run = analyzer.begin(config, nthreads);
                    let mut cursor = Cursor::new(fd, k + 1);
                    let mut chunk = 0usize;
                    let res = loop {
                        match cursor.next_chunk_ref() {
                            Ok(Some(events)) => {
                                let t0 = trace_now();
                                if let Err(e) = run.push_events(events) {
                                    break Err(e);
                                }
                                if tracefmt::recording() {
                                    tracefmt::span(
                                        ANALYZE_PID,
                                        tid,
                                        "analyze",
                                        t0,
                                        trace_now() - t0,
                                        &[
                                            ("chunk", chunk.to_string()),
                                            ("events", events.len().to_string()),
                                        ],
                                    );
                                }
                                chunk += 1;
                            }
                            Ok(None) => break Ok(run.finish()),
                            Err(e) => break Err(e),
                        }
                    };
                    obsv::flush();
                    res
                })
            })
            .collect();
        // The profile consumer runs here: per-chunk partials + stitch, the
        // same math as `profile_chunked`, fed from the shared pool.
        let profile = {
            let stitch_tid = 99u64;
            if tracefmt::recording() {
                tracefmt::name_thread(ANALYZE_PID, stitch_tid, "profile stitch");
            }
            let mut cursor = Cursor::new(&fd, 0);
            let mut stitcher = ProfileStitcher::new(nthreads);
            let mut chunk = 0usize;
            loop {
                match cursor.next_chunk_ref() {
                    Ok(Some(events)) => match ChunkProfile::of_events(events, nthreads) {
                        Ok(part) => {
                            let t0 = trace_now();
                            stitcher.push(&part);
                            if tracefmt::recording() {
                                tracefmt::span(
                                    ANALYZE_PID,
                                    stitch_tid,
                                    "stitch",
                                    t0,
                                    trace_now() - t0,
                                    &[("chunk", chunk.to_string())],
                                );
                            }
                            chunk += 1;
                        }
                        Err(e) => break Err(e),
                    },
                    Ok(None) => break Ok(stitcher.finish()),
                    Err(e) => break Err(e),
                }
            }
        };
        let mut reports = Vec::with_capacity(configs.len());
        let mut first_err: Option<io::Error> = None;
        for h in model_handles {
            match h.join().expect("model analysis thread panicked") {
                Ok(r) => reports.push(r),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok((profile?, reports))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;
    use mem_trace::{FreeRunScheduler, TracedMem};

    fn capture(threads: u32) -> Trace {
        let mem = TracedMem::new(FreeRunScheduler);
        mem.run(threads, |ctx| {
            let a = ctx.palloc(512, 64).unwrap();
            for i in 0..50u64 {
                ctx.work_begin(i);
                ctx.store_u64(a.add(8 * (i % 16)), i);
                if i % 3 == 0 {
                    ctx.persist_barrier();
                }
                if i % 11 == 0 {
                    ctx.persist_sync();
                }
                ctx.work_end(i);
            }
        })
    }

    #[test]
    fn chunked_profile_matches_sequential_any_chunking() {
        let t = capture(3);
        let reference = TraceProfile::of(&t);
        for chunk in [1usize, 3, 7, 64, 10_000] {
            for workers in [1usize, 2, 8] {
                let feed = TraceChunks::new(&t, chunk);
                let got = profile_chunked(&feed, workers).unwrap();
                assert_eq!(got, reference, "chunk={chunk} workers={workers}");
            }
        }
    }

    #[test]
    fn with_source_reassembles_exact_stream() {
        let t = capture(2);
        for chunk in [1usize, 5, 1000] {
            let feed = TraceChunks::new(&t, chunk);
            for workers in [1usize, 2, 8] {
                let collected =
                    with_source(&feed, workers, |src| mem_trace::collect_trace(src).unwrap());
                assert_eq!(collected, t, "chunk={chunk} workers={workers}");
            }
        }
    }

    #[test]
    fn analyze_full_matches_sequential_engines() {
        let t = capture(3);
        let configs: Vec<AnalysisConfig> =
            Model::ALL.iter().map(|&m| AnalysisConfig::new(m)).collect();
        let ref_profile = TraceProfile::of(&t);
        let ref_reports: Vec<TimingReport> =
            configs.iter().map(|c| crate::timing::analyze(&t, c)).collect();
        for workers in [1usize, 2, 8] {
            let feed = TraceChunks::new(&t, 9);
            let (profile, reports) = analyze_full(&feed, &configs, workers).unwrap();
            assert_eq!(profile, ref_profile, "workers={workers}");
            assert_eq!(reports, ref_reports, "workers={workers}");
        }
    }

    #[test]
    fn empty_feed_yields_empty_results() {
        let t = Trace::from_events(2, vec![]);
        let feed = TraceChunks::new(&t, 8);
        assert_eq!(feed.chunk_count(), 0);
        assert_eq!(profile_chunked(&feed, 4).unwrap(), TraceProfile::default());
        let (profile, reports) =
            analyze_full(&feed, &[AnalysisConfig::new(Model::Epoch)], 4).unwrap();
        assert_eq!(profile, TraceProfile::default());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].critical_path, 0);
    }
}
