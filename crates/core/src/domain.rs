//! The dependence domain abstraction shared by the timing and DAG engines.
//!
//! The persistency-model propagation rules (how persist-order constraints
//! flow through thread and memory state, §7 "Persist Timing Simulation")
//! are identical whether the analysis tracks scalar critical-path *levels*
//! (fast, for the figures) or explicit *node sets* (exact, for the recovery
//! observer). [`Domain`] abstracts over the representation; the engine in
//! [`crate::engine`] is written once against it.

use mem_trace::ThreadId;
use persist_mem::MemAddr;

/// A single write performed by a persist, for later replay by the recovery
/// observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRec {
    /// First byte written.
    pub addr: MemAddr,
    /// Width in bytes (1..=8).
    pub len: u8,
    /// Value written (little-endian, low `len` bytes).
    pub value: u64,
}

/// Provenance of a persist: where in the trace it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRef {
    /// Index of the store in the trace's visibility order.
    pub index: usize,
    /// Issuing thread.
    pub thread: ThreadId,
    /// Enclosing work item (from `WorkBegin` markers), if any.
    pub work: Option<u64>,
}

/// Representation of persist-order dependences.
///
/// `Dep` is a join-semilattice element summarizing "the persists that must
/// happen before"; `PRef` identifies an existing persist operation as a
/// coalescing target.
pub(crate) trait Domain {
    /// Accumulated dependence constraint.
    type Dep: Clone;
    /// Handle to a created persist (coalescing target).
    type PRef: Copy;

    /// The empty constraint.
    fn bottom(&self) -> Self::Dep;

    /// `into ⊔= from`.
    fn join(&mut self, into: &mut Self::Dep, from: &Self::Dep);

    /// Creates a new persist ordered after `input`.
    fn new_persist(&mut self, input: &Self::Dep, w: WriteRec, ev: EventRef) -> Self::PRef;

    /// `true` if a persist with incoming constraint `input` may coalesce
    /// into `target` — i.e. every dependence in `input` is already ordered
    /// at or before `target` (§7: coalescing must not violate any persist
    /// order constraint).
    fn can_coalesce(&self, input: &Self::Dep, target: Self::PRef) -> bool;

    /// Merges a persist into `target` (must only be called after
    /// [`Domain::can_coalesce`] returned `true`).
    fn coalesce(&mut self, target: Self::PRef, w: WriteRec, ev: EventRef);

    /// The constraint "ordered after persist `p`".
    fn dep_of(&self, p: Self::PRef) -> Self::Dep;

    /// `into ⊔= dep_of(p)`, without materializing the intermediate
    /// constraint. Domains with allocating `Dep` representations override
    /// this to keep the engine's per-persist path allocation-free.
    fn join_pref(&mut self, into: &mut Self::Dep, p: Self::PRef) {
        let dep = self.dep_of(p);
        self.join(into, &dep);
    }

    /// `*into = dep_of(p)`, reusing `into`'s storage where possible.
    fn assign_pref(&mut self, into: &mut Self::Dep, p: Self::PRef) {
        *into = self.dep_of(p);
    }

    /// `*dep = bottom()`, reusing `dep`'s storage where possible (the
    /// engine clears block reader sets on every write).
    fn reset_dep(&self, dep: &mut Self::Dep) {
        *dep = self.bottom();
    }
}
