//! Litmus tests for persistency-model semantics.
//!
//! Memory consistency models are traditionally characterized by litmus
//! tests — small named programs whose allowed outcomes distinguish the
//! models. This module does the same for the paper's persistency models:
//! each [`Litmus`] is a two-persist scenario from §4–§5 with the
//! *expected* persist-order relation under every model, and
//! [`Litmus::check`] evaluates the actual relation from the persist DAG.
//!
//! The suite doubles as an executable summary of the models' semantics
//! and as a regression net for the propagation engine: the expected
//! matrix is asserted in this module's tests and printed by the `litmus`
//! binary in the bench crate.

use crate::cycle::IntendedOrder;
use crate::dag::PersistDag;
use crate::{AnalysisConfig, Model};
use core::fmt;
use mem_trace::{Trace, TraceBuilder};
use persist_mem::{MemAddr, TrackingGranularity};

/// The persist-order relation between a litmus test's two tagged persists
/// (to addresses `A` and `B`), or the enforceability of the whole order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// B is transitively ordered after A in persistent memory order: the
    /// recovery observer can never see B without A.
    Ordered,
    /// A and B are concurrent: either may be observed without the other.
    Concurrent,
    /// A and B coalesced into one atomic persist (same-address cases).
    Coalesced,
    /// The intended persist order is cyclic — unenforceable (Figure 1).
    Unenforceable,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::Ordered => "ordered",
            Outcome::Concurrent => "concurrent",
            Outcome::Coalesced => "coalesced",
            Outcome::Unenforceable => "CYCLE",
        })
    }
}

/// The two tagged persistent addresses every litmus trace uses.
const A: MemAddr = MemAddr::persistent(0);
const B: MemAddr = MemAddr::persistent(64);
/// A volatile flag used by message-passing shapes.
const F: MemAddr = MemAddr::volatile(0);
/// A persistent flag for persistent-space races.
const X: MemAddr = MemAddr::persistent(128);

/// A named persistency litmus test.
pub struct Litmus {
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description, with the paper section it encodes.
    pub description: &'static str,
    /// The trace (built once; visibility order may be non-SC).
    pub trace: Trace,
    /// Whether to evaluate enforceability (Figure 1 style) instead of the
    /// A→B relation.
    pub cycle_check: bool,
    /// The two tagged persist addresses (defaults to the module's A/B).
    pub tagged: (MemAddr, MemAddr),
}

impl fmt::Debug for Litmus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Litmus").field("name", &self.name).finish_non_exhaustive()
    }
}

impl Litmus {
    /// Evaluates the test under `model`.
    ///
    /// # Panics
    ///
    /// Panics if the trace has no persist to `A` or `B` (malformed test).
    pub fn check(&self, model: Model) -> Outcome {
        if self.cycle_check {
            let order = IntendedOrder::build(&self.trace, TrackingGranularity::default());
            return if order.find_cycle().is_some() {
                Outcome::Unenforceable
            } else {
                Outcome::Ordered
            };
        }
        let dag = PersistDag::build(&self.trace, &AnalysisConfig::new(model))
            .expect("litmus traces are tiny");
        let find = |addr: MemAddr| {
            dag.nodes()
                .iter()
                .position(|n| n.writes.iter().any(|w| w.addr == addr))
                .map(|i| i as u32)
        };
        let a = find(self.tagged.0).expect("litmus persists to A");
        let b = find(self.tagged.1).expect("litmus persists to B");
        if a == b {
            Outcome::Coalesced
        } else if dag.depends_on(b, a) {
            Outcome::Ordered
        } else {
            Outcome::Concurrent
        }
    }
}

/// Builds the full litmus suite.
pub fn suite() -> Vec<Litmus> {
    let mut out = Vec::new();

    // 1. Program order, no annotations (§5.1).
    let mut tb = TraceBuilder::new(1);
    tb.store(0, A, 1).store(0, B, 2);
    out.push(Litmus {
        name: "program-order-bare",
        description: "two persists, no annotation: only strict persistency orders (§5.1)",
        trace: tb.build(),
        cycle_check: false,
        tagged: (A, B),
    });

    // 2. Persist barrier between them (§5.2).
    let mut tb = TraceBuilder::new(1);
    tb.store(0, A, 1).persist_barrier(0).store(0, B, 2);
    out.push(Litmus {
        name: "persist-barrier",
        description: "persist barrier between persists: all but strict-rmo order (§5.2)",
        trace: tb.build(),
        cycle_check: false,
        tagged: (A, B),
    });

    // 3. Memory barrier between them (§4.2).
    let mut tb = TraceBuilder::new(1);
    tb.store(0, A, 1).mem_barrier(0).store(0, B, 2);
    out.push(Litmus {
        name: "mem-barrier",
        description: "store barrier only: orders persists only where persistency ≡ consistency (§4.2)",
        trace: tb.build(),
        cycle_check: false,
        tagged: (A, B),
    });

    // 4. Message passing through a volatile flag (§4, epoch rule 2).
    let mut tb = TraceBuilder::new(2);
    tb.store(0, A, 1).persist_barrier(0).store(0, F, 1);
    tb.load(1, F, 1).persist_barrier(1).store(1, B, 2);
    out.push(Litmus {
        name: "message-passing-volatile",
        description: "flag handoff through volatile memory: coherent-conflict models order (§4)",
        trace: tb.build(),
        cycle_check: false,
        tagged: (A, B),
    });

    // 5. Load-before-store race on the persistent space (§5.2).
    let mut tb = TraceBuilder::new(2);
    tb.store(0, A, 1).persist_barrier(0).load(0, X, 0);
    tb.store(1, X, 7).persist_barrier(1).store(1, B, 2);
    out.push(Litmus {
        name: "load-before-store",
        description: "first access a load, second a store: BPFS's TSO detection misses it (§5.2)",
        trace: tb.build(),
        cycle_check: false,
        tagged: (A, B),
    });

    // 6. Same-epoch accesses are unordered (§5.2: epochs not serializable).
    let mut tb = TraceBuilder::new(2);
    tb.store(0, A, 1).store(0, F, 1); // same epoch: persist then flag
    tb.load(1, F, 1).persist_barrier(1).store(1, B, 2);
    out.push(Litmus {
        name: "persist-epoch-race",
        description: "flag write in the persist's own epoch: the race inherits nothing (§5.2)",
        trace: tb.build(),
        cycle_check: false,
        tagged: (A, B),
    });

    // 7. Strand independence (§5.3).
    let mut tb = TraceBuilder::new(1);
    tb.store(0, A, 1).persist_barrier(0).new_strand(0).store(0, B, 2);
    out.push(Litmus {
        name: "strand-independence",
        description: "NewStrand between persists: strand persistency forgets the barrier (§5.3)",
        trace: tb.build(),
        cycle_check: false,
        tagged: (A, B),
    });

    // 8. The strand ordering idiom: read the dependency, barrier, persist
    //    (§5.3).
    let mut tb = TraceBuilder::new(1);
    tb.store(0, A, 1).new_strand(0).load(0, A, 1).persist_barrier(0).store(0, B, 2);
    out.push(Litmus {
        name: "strand-read-idiom",
        description: "new strand reads A then barriers: strong persist atomicity re-orders B after A (§5.3)",
        trace: tb.build(),
        cycle_check: false,
        tagged: (A, B),
    });

    // 9. Strong persist atomicity: same-address persists (§4.3). B here is
    //    a second persist to A's address — expect Coalesced or Ordered,
    //    never Concurrent. Encoded with both writes to A and B unused… use
    //    A twice and tag the second store's value; we instead persist A
    //    then A again and then copy the outcome to B for tagging.
    let mut tb = TraceBuilder::new(2);
    tb.store(0, A, 1);
    tb.store(1, A, 2).persist_barrier(1).store(1, B, 3);
    out.push(Litmus {
        name: "strong-persist-atomicity",
        description: "cross-thread same-address persists serialize; B follows via barrier (§4.3)",
        trace: tb.build(),
        cycle_check: false,
        tagged: (A, B),
    });

    // 10. Persist sync orders under every model (§4.1).
    let mut tb = TraceBuilder::new(1);
    tb.store(0, A, 1).op(0, mem_trace::Op::PersistSync).store(0, B, 2);
    out.push(Litmus {
        name: "persist-sync",
        description: "persist_sync drains the buffer: ordered under every model (§4.1)",
        trace: tb.build(),
        cycle_check: false,
        tagged: (A, B),
    });

    // 11. Adjacent sub-word persists in one atomic block coalesce (§3):
    //     two 4-byte stores into A's 8-byte block become one atomic
    //     persist under every model.
    let half = MemAddr::persistent(4);
    let mut tb = TraceBuilder::new(1);
    tb.op(0, mem_trace::Op::Store { addr: A, len: 4, value: 1 });
    tb.op(0, mem_trace::Op::Store { addr: half, len: 4, value: 2 });
    out.push(Litmus {
        name: "adjacent-coalesce",
        description: "two half-word persists in one atomic block merge into one persist (§3)",
        trace: tb.build(),
        cycle_check: false,
        tagged: (A, half),
    });

    // 12. Figure 1: reordered visibility across a persist barrier.
    let mut tb = TraceBuilder::new(2);
    tb.store(0, A, 1).persist_barrier(0).store(0, B, 2);
    tb.store(1, B, 3).persist_barrier(1).store(1, A, 4);
    tb.set_visibility(vec![(0, 2), (1, 0), (1, 1), (1, 2), (0, 0), (0, 1)]);
    out.push(Litmus {
        name: "figure1-visibility-reorder",
        description: "store visibility reorders across a persist barrier: unenforceable (§4.3)",
        trace: tb.build(),
        cycle_check: true,
        tagged: (A, B),
    });

    out
}

/// The expected outcome matrix, used by the tests below and printed by
/// the `litmus` binary for comparison.
pub fn expected(name: &str, model: Model) -> Option<Outcome> {
    use Model::*;
    use Outcome::*;
    Some(match (name, model) {
        ("program-order-bare", Strict) => Ordered,
        ("program-order-bare", _) => Concurrent,

        ("persist-barrier", StrictRmo) => Concurrent,
        ("persist-barrier", _) => Ordered,

        ("mem-barrier", Strict | StrictRmo) => Ordered,
        ("mem-barrier", _) => Concurrent,

        // The handoff shapes use persist barriers, which strict-rmo
        // ignores (it needs memory barriers instead): concurrent there.
        ("message-passing-volatile", Strict | Epoch) => Ordered,
        ("message-passing-volatile", StrictRmo | Bpfs | Strand) => Concurrent,

        ("load-before-store", Strict | Epoch) => Ordered,
        ("load-before-store", StrictRmo | Bpfs | Strand) => Concurrent,

        ("persist-epoch-race", Strict) => Ordered,
        ("persist-epoch-race", _) => Concurrent,

        ("strand-independence", Strict) => Ordered,
        ("strand-independence", Epoch | Bpfs) => Ordered,
        ("strand-independence", StrictRmo) => Concurrent,
        ("strand-independence", Strand) => Concurrent,

        ("strand-read-idiom", StrictRmo) => Concurrent,
        ("strand-read-idiom", _) => Ordered,

        ("strong-persist-atomicity", StrictRmo) => Concurrent,
        ("strong-persist-atomicity", _) => Ordered,

        ("persist-sync", _) => Ordered,

        ("adjacent-coalesce", _) => Coalesced,

        ("figure1-visibility-reorder", _) => Unenforceable,

        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_expected_matrix() {
        for litmus in suite() {
            for model in Model::ALL {
                let want = expected(litmus.name, model)
                    .unwrap_or_else(|| panic!("no expectation for {}", litmus.name));
                let got = litmus.check(model);
                assert_eq!(
                    got, want,
                    "litmus {} under {model}: got {got}, expected {want}",
                    litmus.name
                );
            }
        }
    }

    #[test]
    fn suite_is_nonempty_and_named_uniquely() {
        let s = suite();
        assert!(s.len() >= 11);
        let names: std::collections::HashSet<_> = s.iter().map(|l| l.name).collect();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn non_cycle_traces_are_sc() {
        for litmus in suite() {
            if !litmus.cycle_check {
                litmus.trace.validate_sc().unwrap_or_else(|e| {
                    panic!("litmus {} is not a legal SC trace: {e}", litmus.name)
                });
            }
        }
    }
}
