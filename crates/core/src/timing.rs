//! Persist ordering constraint critical path (§7–§8).
//!
//! The paper evaluates persistency models implementation-independently: it
//! assumes infinite NVRAM bandwidth and banks, so persist throughput is
//! limited only by the longest chain (critical path) of persist ordering
//! constraints. This module computes that critical path by propagating
//! scalar *levels* (DAG depth) through the engine.
//!
//! Coalescing legality is checked against timestamps (levels), mirroring
//! the paper's methodology ("persist times are tracked per address … every
//! persist attempts to coalesce with the last persist to that address").
//! The scalar check may admit a coalesce between level-equal but unordered
//! persists that the exact reachability check of [`crate::dag`] would
//! refuse; the DAG engine is therefore an upper bound on the critical path
//! and is the one used for recovery-correctness analyses.

use crate::domain::{Domain, EventRef, WriteRec};
use crate::engine::{self, EngineStats};
use crate::AnalysisConfig;
use mem_trace::{EventSource, Trace};
use std::io;

/// Scalar level domain: a dependence is summarized by the maximum level of
/// any persist that must happen before.
#[derive(Debug, Default)]
struct LevelDomain {
    max_level: u64,
    nodes: u64,
}

impl Domain for LevelDomain {
    /// Maximum level ordered before.
    type Dep = u64;
    /// A persist is identified by its level (identity beyond the level is
    /// irrelevant for timing).
    type PRef = u64;

    fn bottom(&self) -> u64 {
        0
    }

    fn join(&mut self, into: &mut u64, from: &u64) {
        *into = (*into).max(*from);
    }

    fn new_persist(&mut self, input: &u64, _w: WriteRec, _ev: EventRef) -> u64 {
        let level = input + 1;
        self.max_level = self.max_level.max(level);
        self.nodes += 1;
        level
    }

    fn can_coalesce(&self, input: &u64, target: u64) -> bool {
        // Coalescing folds the persist into `target`: legal iff no incoming
        // dependence is newer than the target persist.
        *input <= target
    }

    fn coalesce(&mut self, _target: u64, _w: WriteRec, _ev: EventRef) {}

    fn dep_of(&self, p: u64) -> u64 {
        p
    }
}

/// Result of a critical-path analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Configuration the analysis ran under.
    pub config: AnalysisConfig,
    /// Length of the longest persist ordering constraint chain.
    pub critical_path: u64,
    /// Distinct persists after coalescing (nodes in the constraint DAG).
    pub persist_nodes: u64,
    /// Raw engine statistics.
    pub stats: EngineStats,
}

impl TimingReport {
    /// Critical path per completed work item — the paper's per-insert
    /// metric (Figures 4 and 5). Returns the whole critical path if the
    /// trace has no work markers.
    pub fn critical_path_per_work(&self) -> f64 {
        if self.stats.work_items == 0 {
            self.critical_path as f64
        } else {
            self.critical_path as f64 / self.stats.work_items as f64
        }
    }

    /// Fraction of persist operations that coalesced away.
    pub fn coalesce_rate(&self) -> f64 {
        if self.stats.persist_ops == 0 {
            0.0
        } else {
            self.stats.coalesced as f64 / self.stats.persist_ops as f64
        }
    }
}

/// Computes the persist ordering constraint critical path of `trace` under
/// `config`.
///
/// # Example
///
/// ```rust
/// use mem_trace::{TracedMem, FreeRunScheduler};
/// use persistency::{timing, AnalysisConfig, Model};
///
/// let mem = TracedMem::new(FreeRunScheduler);
/// let trace = mem.run(1, |ctx| {
///     let a = ctx.palloc(256, 64).unwrap();
///     for i in 0..8 {
///         ctx.store_u64(a.add(8 * i), i); // one epoch: all concurrent
///     }
/// });
/// let r = timing::analyze(&trace, &AnalysisConfig::new(Model::Epoch));
/// assert_eq!(r.critical_path, 1);
/// let r = timing::analyze(&trace, &AnalysisConfig::new(Model::Strict));
/// assert_eq!(r.critical_path, 8); // program order serializes
/// ```
pub fn analyze(trace: &Trace, config: &AnalysisConfig) -> TimingReport {
    Analyzer::new().analyze(trace, config)
}

/// Computes the critical path from a streaming event source (e.g. an
/// [`io::TraceReader`](mem_trace::io::TraceReader) over a serialized
/// trace) without materializing the trace in memory.
///
/// # Errors
///
/// Propagates the source's decode/I/O errors.
pub fn analyze_source<E: EventSource>(
    source: E,
    config: &AnalysisConfig,
) -> io::Result<TimingReport> {
    Analyzer::new().analyze_source(source, config)
}

/// Reusable timing analyzer.
///
/// Keeps the engine's working state (block hash tables, per-thread
/// dependence values) alive between runs so sweep loops that analyze many
/// (trace, config) cells back to back skip the per-run growth of those
/// tables. One-shot callers can keep using [`analyze`].
pub struct Analyzer {
    scratch: engine::Scratch<LevelDomain>,
}

impl Analyzer {
    /// Creates an analyzer with empty scratch state.
    pub fn new() -> Self {
        Analyzer { scratch: engine::Scratch::new(&LevelDomain::default()) }
    }

    /// Computes the critical path of `trace` under `config`, reusing
    /// scratch capacity from previous calls.
    pub fn analyze(&mut self, trace: &Trace, config: &AnalysisConfig) -> TimingReport {
        self.analyze_source(trace.source(), config)
            .expect("in-memory trace sources cannot fail")
    }

    /// Streaming variant of [`Analyzer::analyze`]: one forward pass over
    /// `source`, constant memory beyond the engine's block tables.
    ///
    /// # Errors
    ///
    /// Propagates the source's decode/I/O errors.
    pub fn analyze_source<E: EventSource>(
        &mut self,
        source: E,
        config: &AnalysisConfig,
    ) -> io::Result<TimingReport> {
        let mut dom = LevelDomain::default();
        let _span = obsv::span("timing.analyze");
        let stats = engine::run_with_source(source, config, &mut dom, &mut self.scratch)?;
        if obsv::enabled() {
            obsv::counter_add("timing.analyses", 1);
            obsv::observe("timing.critical_path", dom.max_level);
        }
        Ok(TimingReport {
            config: *config,
            critical_path: dom.max_level,
            persist_nodes: dom.nodes,
            stats,
        })
    }

    /// Begins an incremental analysis: the caller pushes decoded event
    /// blocks through [`TimingRun::push_events`] in stream order and
    /// [`TimingRun::finish`]es for the report. Equivalent to
    /// [`analyze_source`](Analyzer::analyze_source) over the concatenated
    /// blocks — this is how the chunked-parallel pipeline feeds each model
    /// engine without a per-consumer decode pass.
    pub(crate) fn begin(&mut self, config: &AnalysisConfig, nthreads: u32) -> TimingRun<'_> {
        let dom = LevelDomain::default();
        self.scratch.reset(&dom, nthreads as usize);
        TimingRun {
            config: *config,
            nthreads: nthreads as usize,
            dom,
            scratch: &mut self.scratch,
            state: engine::RunState::default(),
        }
    }
}

/// An in-progress incremental critical-path analysis (see
/// [`Analyzer::begin`]).
pub(crate) struct TimingRun<'s> {
    config: AnalysisConfig,
    nthreads: usize,
    dom: LevelDomain,
    scratch: &'s mut engine::Scratch<LevelDomain>,
    state: engine::RunState,
}

impl TimingRun<'_> {
    /// Propagates one block of events (in stream order).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if an event names a thread outside the run's
    /// thread count.
    pub(crate) fn push_events(&mut self, events: &[mem_trace::Event]) -> io::Result<()> {
        engine::push_events(
            &self.config,
            self.nthreads,
            &mut self.dom,
            self.scratch,
            &mut self.state,
            events,
        )
    }

    /// Completes the run, emitting the same observability counters as
    /// [`Analyzer::analyze_source`].
    pub(crate) fn finish(self) -> TimingReport {
        self.state.finish_obsv();
        if obsv::enabled() {
            obsv::counter_add("timing.analyses", 1);
            obsv::observe("timing.critical_path", self.dom.max_level);
        }
        TimingReport {
            config: self.config,
            critical_path: self.dom.max_level,
            persist_nodes: self.dom.nodes,
            stats: self.state.stats,
        }
    }
}

impl std::fmt::Debug for TimingRun<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingRun").finish_non_exhaustive()
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyzer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;
    use mem_trace::{FreeRunScheduler, ThreadCtx, TracedMem};
    use persist_mem::{AtomicPersistSize, MemAddr, TrackingGranularity};

    fn cfg(model: Model) -> AnalysisConfig {
        AnalysisConfig::new(model)
    }

    fn run1(f: impl Fn(&ThreadCtx<'_, FreeRunScheduler>) + Sync) -> Trace {
        TracedMem::new(FreeRunScheduler).run(1, f)
    }

    #[test]
    fn strict_serializes_program_order() {
        let t = run1(|ctx| {
            let a = ctx.palloc(256, 64).unwrap();
            for i in 0..10 {
                ctx.store_u64(a.add(8 * i), i);
            }
        });
        assert_eq!(analyze(&t, &cfg(Model::Strict)).critical_path, 10);
    }

    #[test]
    fn epoch_allows_concurrency_within_epoch() {
        let t = run1(|ctx| {
            let a = ctx.palloc(256, 64).unwrap();
            for i in 0..5 {
                ctx.store_u64(a.add(8 * i), i);
            }
            ctx.persist_barrier();
            for i in 5..10 {
                ctx.store_u64(a.add(8 * i), i);
            }
        });
        let r = analyze(&t, &cfg(Model::Epoch));
        assert_eq!(r.critical_path, 2);
        assert_eq!(r.persist_nodes, 10);
        assert_eq!(r.stats.persist_ops, 10);
    }

    #[test]
    fn volatile_stores_are_not_persists() {
        let t = run1(|ctx| {
            for i in 0..10 {
                ctx.store_u64(MemAddr::volatile(8 * i), i);
            }
        });
        let r = analyze(&t, &cfg(Model::Strict));
        assert_eq!(r.critical_path, 0);
        assert_eq!(r.stats.persist_ops, 0);
    }

    #[test]
    fn strong_persist_atomicity_orders_same_address() {
        // Two persists to the same word, no barrier: same epoch, but SPA
        // serializes (or coalesces) them. With distinct values they try to
        // coalesce — which is allowed here (no intervening dependence).
        let t = run1(|ctx| {
            let a = ctx.palloc(64, 8).unwrap();
            ctx.store_u64(a, 1);
            ctx.store_u64(a, 2);
        });
        let r = analyze(&t, &cfg(Model::Epoch));
        assert_eq!(r.critical_path, 1); // coalesced
        assert_eq!(r.stats.coalesced, 1);
    }

    #[test]
    fn coalescing_blocked_by_intervening_dependence() {
        // persist A; barrier; persist B (elsewhere); barrier; persist A
        // again. The second A-persist depends on B (level 2) which is newer
        // than the first A-persist (level 1), so it cannot coalesce.
        let t = run1(|ctx| {
            let a = ctx.palloc(64, 8).unwrap();
            let b = ctx.palloc(64, 8).unwrap();
            ctx.store_u64(a, 1);
            ctx.persist_barrier();
            ctx.store_u64(b, 1);
            ctx.persist_barrier();
            ctx.store_u64(a, 2);
        });
        let r = analyze(&t, &cfg(Model::Epoch));
        assert_eq!(r.critical_path, 3);
        assert_eq!(r.stats.coalesced, 0);
    }

    #[test]
    fn coalescing_allowed_across_barrier_to_same_address() {
        // persist A; barrier; persist A: merging them persists atomically,
        // which cannot violate the barrier (the paper's head-pointer
        // coalescing relies on this).
        let t = run1(|ctx| {
            let a = ctx.palloc(64, 8).unwrap();
            ctx.store_u64(a, 1);
            ctx.persist_barrier();
            ctx.store_u64(a, 2);
        });
        let r = analyze(&t, &cfg(Model::Epoch));
        assert_eq!(r.critical_path, 1);
        assert_eq!(r.stats.coalesced, 1);
    }

    #[test]
    fn large_atomic_persists_coalesce_under_strict() {
        // Figure 4's effect: sequential stores to one 64-byte block
        // coalesce into a single persist under strict persistency when the
        // atomic persist granularity covers the block.
        let t = run1(|ctx| {
            let a = ctx.palloc(64, 64).unwrap();
            for i in 0..8 {
                ctx.store_u64(a.add(8 * i), i);
            }
        });
        let small = analyze(&t, &cfg(Model::Strict));
        assert_eq!(small.critical_path, 8);
        let big = analyze(
            &t,
            &cfg(Model::Strict).with_atomic_persist(AtomicPersistSize::new(64).unwrap()),
        );
        assert_eq!(big.critical_path, 1);
        assert_eq!(big.stats.coalesced, 7);
    }

    #[test]
    fn coarse_tracking_reintroduces_constraints_for_epoch() {
        // Figure 5's effect: with 64-byte tracking, persists to adjacent
        // words in one epoch conflict (false sharing) and serialize.
        let t = run1(|ctx| {
            let a = ctx.palloc(64, 64).unwrap();
            for i in 0..8 {
                ctx.store_u64(a.add(8 * i), i);
            }
        });
        let fine = analyze(&t, &cfg(Model::Epoch));
        assert_eq!(fine.critical_path, 1);
        let coarse = analyze(
            &t,
            &cfg(Model::Epoch).with_tracking(TrackingGranularity::new(64).unwrap()),
        );
        assert_eq!(coarse.critical_path, 8);
    }

    #[test]
    fn strand_clears_dependences() {
        let t = run1(|ctx| {
            let a = ctx.palloc(256, 64).unwrap();
            ctx.store_u64(a, 1);
            ctx.persist_barrier();
            ctx.store_u64(a.add(8), 2); // ordered after the first
            ctx.new_strand();
            ctx.store_u64(a.add(16), 3); // fresh strand: concurrent
        });
        let strand = analyze(&t, &cfg(Model::Strand));
        assert_eq!(strand.critical_path, 2);
        // Epoch ignores NewStrand: the third persist is still ordered.
        let epoch = analyze(&t, &cfg(Model::Epoch));
        assert_eq!(epoch.critical_path, 2); // third is in second epoch too
        let strict = analyze(&t, &cfg(Model::Strict));
        assert_eq!(strict.critical_path, 3);
    }

    #[test]
    fn strand_spa_still_orders_same_address() {
        let t = run1(|ctx| {
            let a = ctx.palloc(64, 8).unwrap();
            ctx.store_u64(a, 1);
            ctx.persist_barrier();
            ctx.store_u64(a.add(8), 2);
            ctx.new_strand();
            // Same address as the level-2 persist: SPA orders (here:
            // coalesces, since the strand has no other dependence).
            ctx.store_u64(a.add(8), 3);
        });
        let r = analyze(&t, &cfg(Model::Strand));
        assert_eq!(r.critical_path, 2);
        assert_eq!(r.stats.coalesced, 1);
    }

    #[test]
    fn strand_read_then_barrier_orders_new_persists() {
        // §5.3: "a persist strand begins by reading persisted memory
        // locations after which new persists must be ordered", enforced
        // with a subsequent persist barrier.
        let t = run1(|ctx| {
            let a = ctx.palloc(64, 8).unwrap();
            let b = ctx.palloc(64, 8).unwrap();
            ctx.store_u64(a, 1); // level 1
            ctx.new_strand();
            ctx.load_u64(a); // adopt a's persist
            ctx.persist_barrier();
            ctx.store_u64(b, 2); // must be level 2
        });
        let r = analyze(&t, &cfg(Model::Strand));
        assert_eq!(r.critical_path, 2);
    }

    #[test]
    fn strand_read_without_barrier_leaves_persist_concurrent() {
        let t = run1(|ctx| {
            let a = ctx.palloc(64, 8).unwrap();
            let b = ctx.palloc(64, 8).unwrap();
            ctx.store_u64(a, 1);
            ctx.new_strand();
            ctx.load_u64(a); // read lands in `cur`…
            ctx.store_u64(b, 2); // …but no barrier: still concurrent
        });
        let r = analyze(&t, &cfg(Model::Strand));
        assert_eq!(r.critical_path, 1);
    }

    #[test]
    fn bpfs_misses_load_before_store_race() {
        // Thread 0: persist A, barrier, then read flag F (volatile).
        // Thread 1: write F, barrier, then persist B.
        // Under SC conflict detection (epoch model), B is ordered after A:
        // t0's read of F carries A (barrier-separated), and t1's write of F
        // conflicts-after that read (a load-before-store race). BPFS's
        // write-record-only detection on the persistent space misses this.
        use mem_trace::TraceBuilder;
        let a = MemAddr::persistent(64);
        let b = MemAddr::persistent(128);
        let f = MemAddr::volatile(0);
        let mut tb = TraceBuilder::new(2);
        tb.store(0, a, 1);
        tb.persist_barrier(0);
        tb.load(0, f, 0);
        tb.store(1, f, 1);
        tb.persist_barrier(1);
        tb.store(1, b, 1);
        let t = tb.build();
        t.validate_sc().unwrap();
        assert_eq!(analyze(&t, &cfg(Model::Epoch)).critical_path, 2);
        assert_eq!(analyze(&t, &cfg(Model::Bpfs)).critical_path, 1);
    }

    #[test]
    fn bpfs_misses_persistent_load_before_store() {
        // Same race entirely inside the persistent address space: the first
        // access to X is a load, the second a store. BPFS records only the
        // last *persist* per line, so the R→W conflict goes undetected —
        // exactly the §5.2 observation that BPFS detects conflicts per TSO
        // rather than SC.
        use mem_trace::TraceBuilder;
        let a = MemAddr::persistent(64);
        let x = MemAddr::persistent(128);
        let mut tb = TraceBuilder::new(2);
        tb.store(0, a, 1);
        tb.persist_barrier(0);
        tb.load(0, x, 0); // reads X before t1 writes it
        tb.store(1, x, 7);
        let t = tb.build();
        t.validate_sc().unwrap();
        // Epoch: t1's persist of X is ordered after t0's read, hence after
        // A; a new level is required.
        assert_eq!(analyze(&t, &cfg(Model::Epoch)).critical_path, 2);
        // BPFS: no record of the read; X's persist is unordered w.r.t. A.
        assert_eq!(analyze(&t, &cfg(Model::Bpfs)).critical_path, 1);
    }

    #[test]
    fn epoch_same_epoch_accesses_are_unordered() {
        // Within one epoch a persist and a later load are unordered in
        // persistent memory order, so a cross-thread race on the loaded
        // flag inherits nothing (§5.2: epochs are not serializable).
        use mem_trace::TraceBuilder;
        let a = MemAddr::persistent(64);
        let b = MemAddr::persistent(128);
        let f = MemAddr::volatile(0);
        let mut tb = TraceBuilder::new(2);
        tb.store(0, a, 1);
        tb.load(0, f, 0); // same epoch as the persist: unordered
        tb.store(1, f, 1);
        tb.persist_barrier(1);
        tb.store(1, b, 1);
        let t = tb.build();
        t.validate_sc().unwrap();
        assert_eq!(analyze(&t, &cfg(Model::Epoch)).critical_path, 1);
        // Strict orders everything through program order.
        assert_eq!(analyze(&t, &cfg(Model::Strict)).critical_path, 2);
    }

    #[test]
    fn cross_thread_inheritance_through_volatile_flag() {
        // Message passing: t0 persists A then sets a volatile flag; t1
        // observes the flag, barriers, persists B. Epoch orders B after A.
        use mem_trace::TraceBuilder;
        let a = MemAddr::persistent(64);
        let b = MemAddr::persistent(128);
        let f = MemAddr::volatile(0);
        let mut tb = TraceBuilder::new(2);
        tb.store(0, a, 1);
        tb.persist_barrier(0);
        tb.store(0, f, 1); // flag write carries A's constraint
        tb.load(1, f, 1); // t1 observes
        tb.persist_barrier(1);
        tb.store(1, b, 1);
        let t = tb.build();
        t.validate_sc().unwrap();
        assert_eq!(analyze(&t, &cfg(Model::Epoch)).critical_path, 2);
        // Strand ignores volatile conflicts entirely.
        assert_eq!(analyze(&t, &cfg(Model::Strand)).critical_path, 1);
    }

    #[test]
    fn strict_rmo_orders_only_across_memory_barriers() {
        let t = run1(|ctx| {
            let a = ctx.palloc(256, 64).unwrap();
            ctx.store_u64(a, 1);
            ctx.store_u64(a.add(8), 2); // no barrier: concurrent under RMO
            ctx.mem_barrier();
            ctx.store_u64(a.add(16), 3); // ordered after both
        });
        let rmo = analyze(&t, &cfg(Model::StrictRmo));
        assert_eq!(rmo.critical_path, 2);
        // SC-strict orders everything by program order.
        assert_eq!(analyze(&t, &cfg(Model::Strict)).critical_path, 3);
    }

    #[test]
    fn strict_rmo_ignores_persist_barriers() {
        // §5.1: strict persistency has no persist barriers — ordering comes
        // from the consistency model's own barriers.
        let t = run1(|ctx| {
            let a = ctx.palloc(256, 64).unwrap();
            ctx.store_u64(a, 1);
            ctx.persist_barrier(); // meaningless under strict-rmo
            ctx.store_u64(a.add(8), 2);
        });
        assert_eq!(analyze(&t, &cfg(Model::StrictRmo)).critical_path, 1);
        assert_eq!(analyze(&t, &cfg(Model::Epoch)).critical_path, 2);
    }

    #[test]
    fn mem_barriers_do_not_constrain_relaxed_persistency() {
        // §4.2: store visibility and persist order are enforced separately;
        // persists may reorder across store barriers.
        let t = run1(|ctx| {
            let a = ctx.palloc(256, 64).unwrap();
            ctx.store_u64(a, 1);
            ctx.mem_barrier();
            ctx.store_u64(a.add(8), 2);
        });
        assert_eq!(analyze(&t, &cfg(Model::Epoch)).critical_path, 1);
        assert_eq!(analyze(&t, &cfg(Model::Strand)).critical_path, 1);
        assert_eq!(analyze(&t, &cfg(Model::StrictRmo)).critical_path, 2);
    }

    #[test]
    fn persist_sync_orders_under_every_model() {
        let t = run1(|ctx| {
            let a = ctx.palloc(256, 64).unwrap();
            ctx.store_u64(a, 1);
            ctx.persist_sync();
            ctx.store_u64(a.add(8), 2);
        });
        for model in Model::ALL {
            assert_eq!(analyze(&t, &cfg(model)).critical_path, 2, "model {model}");
        }
    }

    #[test]
    fn per_work_accounting() {
        let t = run1(|ctx| {
            let a = ctx.palloc(1024, 64).unwrap();
            for w in 0..4u64 {
                ctx.work_begin(w);
                ctx.store_u64(a.add(64 * w), w);
                ctx.persist_barrier();
                ctx.work_end(w);
            }
        });
        let r = analyze(&t, &cfg(Model::Strict));
        assert_eq!(r.stats.work_items, 4);
        assert_eq!(r.critical_path_per_work(), 1.0);
    }

    #[test]
    fn models_are_monotonically_relaxed_on_random_single_thread() {
        // strict ≥ epoch ≥ strand on any single-threaded trace.
        use mem_trace::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(11);
        let ops: Vec<(u8, u64)> =
            (0..300).map(|_| (rng.gen_index(4) as u8, rng.gen_index(16) as u64)).collect();
        let t = run1(move |ctx| {
            let a = ctx.palloc(256, 64).unwrap();
            for &(kind, slot) in &ops {
                match kind {
                    0 => ctx.store_u64(a.add(8 * slot), slot),
                    1 => {
                        ctx.load_u64(a.add(8 * slot));
                    }
                    2 => ctx.persist_barrier(),
                    _ => ctx.new_strand(),
                }
            }
        });
        let strict = analyze(&t, &cfg(Model::Strict)).critical_path;
        let epoch = analyze(&t, &cfg(Model::Epoch)).critical_path;
        let strand = analyze(&t, &cfg(Model::Strand)).critical_path;
        assert!(strict >= epoch, "strict {strict} < epoch {epoch}");
        assert!(epoch >= strand, "epoch {epoch} < strand {strand}");
    }
}
