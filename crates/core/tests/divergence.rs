//! Pins the known, by-design divergence between the two analysis engines.
//!
//! The timing engine checks coalescing legality against scalar levels
//! (timestamps), mirroring the paper's methodology: a persist may coalesce
//! into a target iff no incoming dependence is *newer* than the target.
//! Two level-equal but unordered persists pass that check even though the
//! exact DAG dominance test refuses them — so the timing engine may merge
//! persists the DAG engine keeps apart, and the DAG critical path bounds
//! the timing critical path from above. These tests pin both the concrete
//! minimal divergence and the ordering invariant on randomized traces.

use mem_trace::rng::SmallRng;
use mem_trace::{SeededScheduler, TraceBuilder, TracedMem};
use persist_mem::MemAddr;
use persistency::dag::PersistDag;
use persistency::{timing, AnalysisConfig, Model};

/// The minimal trace on which the two coalescing checks disagree:
///
/// ```text
///   t0: store A            (persist P1, level 1)
///   t1: store B            (persist P2, level 1)
///   t1: persist_barrier
///   t1: store A            (persist P3: depends on P2 via the barrier)
/// ```
///
/// P3's incoming constraint carries P2 at level 1, equal to target P1's
/// level, so the timing engine's `input <= target` timestamp check admits
/// the coalesce (critical path 1). P2 is not dominated by P1 in the DAG,
/// so the exact check refuses it and P3 becomes a third node with deps
/// {P1, P2} (critical path 2).
fn divergence_trace() -> mem_trace::Trace {
    let a = MemAddr::persistent(0);
    let b = MemAddr::persistent(64);
    let mut tb = TraceBuilder::new(2);
    tb.store(0, a, 1);
    tb.store(1, b, 2);
    tb.persist_barrier(1);
    tb.store(1, a, 3);
    tb.build()
}

#[test]
fn level_check_coalesces_where_exact_dominance_refuses() {
    let trace = divergence_trace();
    trace.validate_sc().expect("legal SC execution");
    let cfg = AnalysisConfig::new(Model::Epoch);

    let rep = timing::analyze(&trace, &cfg);
    assert_eq!(rep.stats.persist_ops, 3);
    assert_eq!(rep.stats.coalesced, 1, "timestamp check admits the level-equal coalesce");
    assert_eq!(rep.persist_nodes, 2);
    assert_eq!(rep.critical_path, 1);

    let dag = PersistDag::build(&trace, &cfg).unwrap();
    assert_eq!(dag.stats().coalesced, 0, "exact dominance check refuses the same coalesce");
    assert_eq!(dag.len(), 3);
    assert_eq!(dag.critical_path(), 2);
    // The refused node depends on both unordered predecessors.
    assert_eq!(dag.nodes()[2].deps, vec![0, 1]);

    assert!(dag.critical_path() >= rep.critical_path);
}

#[test]
fn divergence_disappears_without_coalescing() {
    // With coalescing disabled the engines walk identical node sets, so
    // the critical paths must agree exactly on the divergence trace.
    let trace = divergence_trace();
    let cfg = AnalysisConfig::new(Model::Epoch).without_coalescing();
    let rep = timing::analyze(&trace, &cfg);
    let dag = PersistDag::build(&trace, &cfg).unwrap();
    assert_eq!(dag.len() as u64, rep.persist_nodes);
    assert_eq!(dag.critical_path(), rep.critical_path);
}

/// On any trace, under every model, the exact DAG critical path bounds the
/// timing (timestamp-coalescing) critical path from above, and the DAG
/// never has fewer nodes.
#[test]
fn dag_bounds_timing_on_randomized_multithread_traces() {
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(seed * 7 + 1);
        let threads = 2 + (seed % 3) as u32; // 2..=4 simulated threads
        // Per-thread random op scripts, decided up front so the seeded
        // scheduler's interleaving is the only source of ordering.
        let scripts: Vec<Vec<(u8, u64)>> = (0..threads)
            .map(|_| (0..40).map(|_| (rng.gen_index(5) as u8, rng.gen_index(8) as u64)).collect())
            .collect();
        let mem = TracedMem::new(SeededScheduler::new(seed));
        let trace = mem.run(threads, |ctx| {
            let tid = ctx.thread_id().as_u64();
            let shared = MemAddr::persistent(0);
            let own = MemAddr::persistent(4096 * (1 + tid));
            for &(kind, slot) in &scripts[tid as usize] {
                match kind {
                    0 => ctx.store_u64(own.add(8 * slot), slot),
                    1 => ctx.store_u64(shared.add(8 * (slot % 4)), slot),
                    2 => {
                        ctx.load_u64(shared.add(8 * (slot % 4)));
                    }
                    3 => ctx.persist_barrier(),
                    _ => ctx.new_strand(),
                }
            }
        });
        for model in Model::ALL {
            let rep = timing::analyze(&trace, &AnalysisConfig::new(model));
            let dag = PersistDag::build(&trace, &AnalysisConfig::new(model)).unwrap();
            assert!(
                dag.critical_path() >= rep.critical_path,
                "seed {seed} model {model}: dag cp {} < timing cp {}",
                dag.critical_path(),
                rep.critical_path
            );
            assert!(
                dag.len() as u64 >= rep.persist_nodes,
                "seed {seed} model {model}: dag nodes {} < timing nodes {}",
                dag.len(),
                rep.persist_nodes
            );
        }
    }
}
