//! Differential tests: the chunked-parallel analysis pipeline must be
//! bit-identical to the sequential engines for any chunking and any
//! worker count.
//!
//! Randomized multi-thread traces are run through both paths — the
//! in-memory [`TraceChunks`] feed at adversarial chunk sizes and a real
//! serialized MPTRACE2 image with a small segment index, mmap-decoded —
//! under every persistency model at 1, 2 and 8 workers. Covered engines:
//! the timing (critical-path) engine, the trace profiler, and the exact
//! persist DAG fed through the decode-parallel stream. Zero-barrier
//! traces exercise the single-chunk / no-epoch degenerate paths.

use mem_trace::mmapio::MappedTrace;
use mem_trace::profile::TraceProfile;
use mem_trace::rng::SmallRng;
use mem_trace::{io as trace_io, SeededScheduler, Trace, TracedMem};
use persist_mem::MemAddr;
use persistency::dag::PersistDag;
use persistency::partition::{self, TraceChunks};
use persistency::{timing, AnalysisConfig, Model};

const WORKERS: [usize; 3] = [1, 2, 8];

/// A randomized multi-thread capture mixing stores, conflicting shared
/// accesses, barriers, syncs, strands and work markers — every op kind
/// the engines treat specially.
fn random_trace(seed: u64, with_barriers: bool) -> Trace {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let threads = 2 + (seed % 3) as u32;
    let scripts: Vec<Vec<(u8, u64)>> = (0..threads)
        .map(|_| (0..60).map(|_| (rng.gen_index(8) as u8, rng.gen_index(8) as u64)).collect())
        .collect();
    let mem = TracedMem::new(SeededScheduler::new(seed));
    mem.run(threads, |ctx| {
        let tid = ctx.thread_id().as_u64();
        let shared = MemAddr::persistent(0);
        let own = MemAddr::persistent(4096 * (1 + tid));
        for (i, &(kind, slot)) in scripts[tid as usize].iter().enumerate() {
            match kind {
                0 | 1 => ctx.store_u64(own.add(8 * slot), slot),
                2 => ctx.store_u64(shared.add(8 * (slot % 4)), slot),
                3 => {
                    ctx.load_u64(shared.add(8 * (slot % 4)));
                }
                4 if with_barriers => ctx.persist_barrier(),
                5 if with_barriers && slot == 0 => ctx.persist_sync(),
                6 if slot < 2 => ctx.new_strand(),
                _ => {
                    ctx.work_begin(i as u64);
                    ctx.store_u64(own.add(8 * (slot % 8)), slot);
                    ctx.work_end(i as u64);
                }
            }
        }
    })
}

/// Serializes to MPTRACE2 with a deliberately tiny segment index so even
/// small test traces decode as many independent chunks.
fn mapped_with_segments(trace: &Trace, segment_events: u64) -> MappedTrace {
    let mut bytes = Vec::new();
    trace_io::write_trace2_segmented(trace, &mut bytes, segment_events).unwrap();
    MappedTrace::from_bytes(bytes).unwrap()
}

/// Compares two DAGs structurally: same nodes, deps, stats and answer.
fn assert_dag_eq(a: &PersistDag, b: &PersistDag, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: node count");
    assert_eq!(a.critical_path(), b.critical_path(), "{ctx}: critical path");
    assert_eq!(a.stats().coalesced, b.stats().coalesced, "{ctx}: coalesced");
    for (i, (na, nb)) in a.nodes().iter().zip(b.nodes()).enumerate() {
        assert_eq!(na.deps, nb.deps, "{ctx}: node {i} deps");
        assert_eq!(na.writes, nb.writes, "{ctx}: node {i} writes");
        assert_eq!(na.events, nb.events, "{ctx}: node {i} events");
        assert_eq!(na.thread, nb.thread, "{ctx}: node {i} thread");
    }
}

#[test]
fn chunked_timing_matches_sequential_all_models() {
    for seed in 0..6u64 {
        let t = random_trace(seed, true);
        let configs: Vec<AnalysisConfig> =
            Model::ALL.iter().map(|&m| AnalysisConfig::new(m)).collect();
        let ref_profile = TraceProfile::of(&t);
        let ref_reports: Vec<_> = configs.iter().map(|c| timing::analyze(&t, c)).collect();
        for chunk in [7usize, 64] {
            let feed = TraceChunks::new(&t, chunk);
            for workers in WORKERS {
                let (profile, reports) =
                    partition::analyze_full(&feed, &configs, workers).unwrap();
                assert_eq!(profile, ref_profile, "seed {seed} chunk {chunk} workers {workers}");
                assert_eq!(reports, ref_reports, "seed {seed} chunk {chunk} workers {workers}");
            }
        }
    }
}

#[test]
fn chunked_timing_matches_on_mmap_segmented_image() {
    for seed in 0..4u64 {
        let t = random_trace(seed, true);
        let map = mapped_with_segments(&t, 32);
        assert!(map.segment_count() > 1, "seed {seed}: want a multi-segment image");
        let configs: Vec<AnalysisConfig> =
            Model::ALL.iter().map(|&m| AnalysisConfig::new(m)).collect();
        let ref_profile = TraceProfile::of(&t);
        let ref_reports: Vec<_> = configs.iter().map(|c| timing::analyze(&t, c)).collect();
        for workers in WORKERS {
            let (profile, reports) = partition::analyze_full(&map, &configs, workers).unwrap();
            assert_eq!(profile, ref_profile, "seed {seed} workers {workers}");
            assert_eq!(reports, ref_reports, "seed {seed} workers {workers}");
        }
    }
}

#[test]
fn chunked_dag_matches_sequential_all_models() {
    for seed in 0..4u64 {
        let t = random_trace(seed, true);
        let map = mapped_with_segments(&t, 32);
        for model in Model::ALL {
            let cfg = AnalysisConfig::new(model);
            let reference = PersistDag::build(&t, &cfg).unwrap();
            for workers in WORKERS {
                let dag = partition::with_source(&map, workers, |src| {
                    PersistDag::build_source(src, &cfg)
                })
                .unwrap();
                assert_dag_eq(&reference, &dag, &format!("seed {seed} {model} w{workers}"));
            }
        }
    }
}

#[test]
fn zero_barrier_traces_take_single_epoch_paths() {
    // No persist barriers at all: the whole trace is one open epoch, the
    // profiler's stitcher sees only trailing frontiers, and every model
    // still agrees with its sequential self.
    for seed in 0..4u64 {
        let t = random_trace(seed, false);
        assert_eq!(TraceProfile::of(&t).persist_barriers, 0);
        let configs: Vec<AnalysisConfig> =
            Model::ALL.iter().map(|&m| AnalysisConfig::new(m)).collect();
        let ref_profile = TraceProfile::of(&t);
        let ref_reports: Vec<_> = configs.iter().map(|c| timing::analyze(&t, c)).collect();
        // Single chunk (the fallback: no threads) and many chunks.
        for chunk in [usize::MAX >> 1, 16] {
            let feed = TraceChunks::new(&t, chunk);
            for workers in WORKERS {
                let (profile, reports) =
                    partition::analyze_full(&feed, &configs, workers).unwrap();
                assert_eq!(profile, ref_profile, "seed {seed} workers {workers}");
                assert_eq!(reports, ref_reports, "seed {seed} workers {workers}");
            }
        }
        let map = mapped_with_segments(&t, 32);
        for model in Model::ALL {
            let cfg = AnalysisConfig::new(model);
            let reference = PersistDag::build(&t, &cfg).unwrap();
            let dag =
                partition::with_source(&map, 8, |src| PersistDag::build_source(src, &cfg))
                    .unwrap();
            assert_dag_eq(&reference, &dag, &format!("seed {seed} {model} zero-barrier"));
        }
    }
}

#[test]
fn unindexed_image_still_analyzes_identically() {
    // A footer-less MPTRACE2 file degrades to one chunk; the parallel
    // entry points must transparently fall back to sequential streaming.
    let t = random_trace(1, true);
    let mut bytes = Vec::new();
    trace_io::write_trace2_segmented(&t, &mut bytes, 0).unwrap();
    let map = MappedTrace::from_bytes(bytes).unwrap();
    assert!(!map.is_indexed());
    assert_eq!(map.segment_count(), 1);
    let configs = [AnalysisConfig::new(Model::Epoch)];
    let (profile, reports) = partition::analyze_full(&map, &configs, 8).unwrap();
    assert_eq!(profile, TraceProfile::of(&t));
    assert_eq!(reports[0], timing::analyze(&t, &configs[0]));
}
