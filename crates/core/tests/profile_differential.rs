//! Differential tests: the attribution profiler must agree with the two
//! analysis engines it sits on top of.
//!
//! On any trace and model, the profiled critical path equals the DAG
//! engine's (the profiler walks that DAG), and therefore equals the
//! timing engine's whenever coalescing is disabled (the engines walk
//! identical node sets then; with timestamp coalescing the DAG bounds
//! timing from above — see `divergence.rs`). The extracted path itself
//! must be a real DAG path with levels 1..=cp, and removing an ordering
//! barrier can only relax constraints, so each what-if critical path is
//! bounded by the baseline.

use mem_trace::rng::SmallRng;
use mem_trace::{SeededScheduler, Trace, TracedMem};
use persist_mem::MemAddr;
use persistency::dag::PersistDag;
use persistency::profile::{profile, EdgeKind};
use persistency::{timing, AnalysisConfig, Model};

/// Randomized multithread workload, same shape as the engine-divergence
/// suite: per-thread op scripts fixed up front, seeded scheduler
/// interleaving.
fn random_trace(seed: u64) -> Trace {
    let mut rng = SmallRng::seed_from_u64(seed * 13 + 5);
    let threads = 2 + (seed % 3) as u32;
    let scripts: Vec<Vec<(u8, u64)>> = (0..threads)
        .map(|_| (0..40).map(|_| (rng.gen_index(6) as u8, rng.gen_index(8) as u64)).collect())
        .collect();
    let mem = TracedMem::new(SeededScheduler::new(seed));
    mem.run(threads, |ctx| {
        let tid = ctx.thread_id().as_u64();
        let shared = MemAddr::persistent(0);
        let own = MemAddr::persistent(4096 * (1 + tid));
        for &(kind, slot) in &scripts[tid as usize] {
            match kind {
                0 => ctx.store_u64(own.add(8 * slot), slot),
                1 => ctx.store_u64(shared.add(8 * (slot % 4)), slot),
                2 => {
                    ctx.load_u64(shared.add(8 * (slot % 4)));
                }
                3 => ctx.persist_barrier(),
                4 => ctx.mem_barrier(),
                _ => ctx.new_strand(),
            }
        }
    })
}

#[test]
fn profile_critical_path_matches_analyzers_on_randomized_traces() {
    for seed in 0..10u64 {
        let trace = random_trace(seed);
        for model in Model::ALL {
            // Without coalescing the three agree exactly.
            let cfg = AnalysisConfig::new(model).without_coalescing();
            let r = profile(&trace, &cfg, 0).unwrap();
            let t = timing::analyze(&trace, &cfg);
            let dag = PersistDag::build(&trace, &cfg).unwrap();
            assert_eq!(r.critical_path, dag.critical_path(), "seed {seed} model {model}");
            assert_eq!(r.critical_path, t.critical_path, "seed {seed} model {model}");

            // With coalescing the profiler still equals the DAG engine,
            // which bounds the timing engine from above.
            let cfg = AnalysisConfig::new(model);
            let r = profile(&trace, &cfg, 0).unwrap();
            let t = timing::analyze(&trace, &cfg);
            let dag = PersistDag::build(&trace, &cfg).unwrap();
            assert_eq!(r.critical_path, dag.critical_path(), "seed {seed} model {model}");
            assert!(r.critical_path >= t.critical_path, "seed {seed} model {model}");
        }
    }
}

#[test]
fn extracted_path_is_a_real_dag_path() {
    for seed in 0..6u64 {
        let trace = random_trace(seed);
        for model in [Model::Strict, Model::Epoch, Model::Strand] {
            let cfg = AnalysisConfig::new(model);
            let r = profile(&trace, &cfg, 0).unwrap();
            let dag = PersistDag::build(&trace, &cfg).unwrap();
            assert_eq!(r.path.len() as u64, r.critical_path, "seed {seed} model {model}");
            for (i, s) in r.path.iter().enumerate() {
                assert_eq!(s.level as usize, i + 1, "levels ascend 1..=cp");
                assert_eq!(s.edge == EdgeKind::Root, i == 0, "root edge only at the start");
                if i > 0 {
                    let prev = r.path[i - 1].node;
                    assert!(
                        dag.nodes()[s.node as usize].deps.contains(&prev),
                        "seed {seed} model {model}: step {i} not a DAG edge"
                    );
                }
            }
            // The sources ranking partitions the path.
            let total: u64 = r.sources.iter().map(|b| b.steps).sum();
            assert_eq!(total, r.critical_path, "seed {seed} model {model}");
        }
    }
}

#[test]
fn barrier_removal_never_lengthens_the_critical_path() {
    // Monotonicity (removing an ordering barrier can only relax
    // constraints) is an exact theorem only without coalescing; greedy
    // coalescing can flip decisions either way (see model.rs).
    for seed in 0..4u64 {
        let trace = random_trace(seed);
        for model in [Model::StrictRmo, Model::Epoch, Model::Bpfs] {
            let cfg = AnalysisConfig::new(model).without_coalescing();
            let r = profile(&trace, &cfg, 32).unwrap();
            assert_eq!(r.timing_critical_path, timing::analyze(&trace, &cfg).critical_path);
            for b in &r.barriers {
                assert!(
                    b.critical_path_without <= r.timing_critical_path,
                    "seed {seed} model {model}: removing barrier at {} lengthened cp {} -> {}",
                    b.trace_index,
                    r.timing_critical_path,
                    b.critical_path_without
                );
                assert_eq!(b.redundant, b.critical_path_without == r.timing_critical_path);
            }
        }
    }
}
