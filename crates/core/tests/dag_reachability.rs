//! Differential test: the DAG's chain-decomposition reachability index
//! (plus its level-pruned DFS fallback) against a straightforward
//! quadratic per-node bitset oracle — the algorithm the old
//! implementation used for every query.
//!
//! Randomized multi-threaded traces are built under every persistency
//! model; for each resulting DAG the oracle closure is computed and
//! *every* `depends_on` pair is compared, along with per-node levels and
//! the critical path.

use mem_trace::rng::SmallRng;
use mem_trace::{SeededScheduler, TracedMem};
use persistency::dag::PersistDag;
use persistency::{AnalysisConfig, Model};

/// Transitive-closure bitsets, one row per node: bit `a` of row `b` set
/// iff `b` transitively depends on `a`. Dependences always point to lower
/// ids, so a single ascending pass is exact.
fn oracle_rows(dag: &PersistDag) -> Vec<Vec<u64>> {
    let n = dag.len();
    let words = n.div_ceil(64);
    let mut rows: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
    for i in 0..n {
        let (done, rest) = rows.split_at_mut(i);
        let row = &mut rest[0];
        for &d in dag.nodes()[i].deps.iter() {
            let d = d as usize;
            row[d / 64] |= 1 << (d % 64);
            for (w, v) in done[d].iter().enumerate() {
                row[w] |= v;
            }
        }
    }
    rows
}

/// Longest path (in nodes) from the oracle closure's edge structure.
fn oracle_critical_path(dag: &PersistDag) -> u64 {
    let mut len = vec![0u64; dag.len()];
    for (i, node) in dag.nodes().iter().enumerate() {
        len[i] = 1 + node.deps.iter().map(|&d| len[d as usize]).max().unwrap_or(0);
    }
    len.iter().copied().max().unwrap_or(0)
}

/// A random persistent workload: stores over a small address pool mixed
/// with loads, persist/memory barriers and strand starts.
fn random_trace(seed: u64, threads: u32, ops_per_thread: u32) -> mem_trace::Trace {
    let mem = TracedMem::new(SeededScheduler::new(seed));
    mem.run(threads, |ctx| {
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (u64::from(ctx.thread_id().0) << 32) ^ 0xD1F);
        for _ in 0..ops_per_thread {
            let addr = persist_mem::MemAddr::persistent(rng.gen_below(24) * 8);
            match rng.gen_below(10) {
                0..=4 => ctx.store_u64(addr, rng.next_u64()),
                5 | 6 => {
                    ctx.load_u64(addr);
                }
                7 => ctx.persist_barrier(),
                8 => ctx.mem_barrier(),
                _ => ctx.new_strand(),
            }
        }
    })
}

#[test]
fn depends_on_matches_bitset_oracle_for_all_pairs() {
    for seed in [1u64, 7, 23] {
        let trace = random_trace(seed, 2, 90);
        for model in Model::ALL {
            let dag = PersistDag::build(&trace, &AnalysisConfig::new(model)).unwrap();
            let rows = oracle_rows(&dag);
            let n = dag.len() as u32;
            assert!(n > 10, "trace too small to be interesting (seed {seed})");
            for b in 0..n {
                for a in 0..n {
                    let expect =
                        a == b || rows[b as usize][a as usize / 64] >> (a % 64) & 1 == 1;
                    assert_eq!(
                        dag.depends_on(b, a),
                        expect,
                        "seed {seed} {model}: depends_on({b}, {a})"
                    );
                }
            }
            assert_eq!(
                dag.critical_path(),
                oracle_critical_path(&dag),
                "seed {seed} {model}: critical path"
            );
        }
    }
}

#[test]
fn levels_bound_ancestry() {
    // A node's level must exceed every ancestor's (the DFS prune relies
    // on it), and equal 1 + max over direct dependences.
    let trace = random_trace(11, 2, 80);
    for model in Model::ALL {
        let dag = PersistDag::build(&trace, &AnalysisConfig::new(model)).unwrap();
        for (i, node) in dag.nodes().iter().enumerate() {
            let expect = 1 + node.deps.iter().map(|&d| dag.level(d)).max().unwrap_or(0);
            assert_eq!(dag.level(i as u32), expect, "{model}: level of {i}");
        }
    }
}
