//! Native (untraced) queue implementations for instruction-rate
//! measurement.
//!
//! Table 1 normalizes persist-bound throughput to the *instruction
//! execution rate*: how fast the queue inserts when persists are free. The
//! paper measures this on real hardware (a Xeon E5645); we measure it on
//! the host with the same code shape — real threads, MCS locks, and real
//! cache-line flush instructions at each persist point (`clflush`/`sfence`
//! on x86_64) so the persist-interface cost is included.

use crate::entry::EntryCodec;
use crate::traced::QueueParams;
use crate::PAYLOAD_BYTES;
use persist_mem::hw;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Queue node for [`NativeMcsLock`]; one per thread per lock, 128-byte
/// aligned against false sharing.
#[repr(align(128))]
#[derive(Debug, Default)]
pub struct McsNode {
    next: AtomicUsize,
    locked: AtomicBool,
}

impl McsNode {
    /// Creates an unlinked node.
    pub fn new() -> Self {
        Self::default()
    }
}

/// MCS queue lock over real atomics — the lock the paper uses for all
/// critical sections (§7).
#[derive(Debug, Default)]
pub struct NativeMcsLock {
    tail: AtomicUsize,
}

impl NativeMcsLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the lock through `node`.
    ///
    /// The node must not be in use by another acquisition.
    pub fn acquire(&self, node: &McsNode) {
        node.next.store(0, Ordering::Relaxed);
        node.locked.store(true, Ordering::Relaxed);
        let me = node as *const McsNode as usize;
        let pred = self.tail.swap(me, Ordering::AcqRel);
        if pred != 0 {
            // SAFETY: `pred` points to a live McsNode: its owner cannot
            // return from release() (and thus invalidate it) until it has
            // observed and unblocked us via our `next` link.
            let pred = unsafe { &*(pred as *const McsNode) };
            pred.next.store(me, Ordering::Release);
            let mut spins = 0u32;
            while node.locked.load(Ordering::Acquire) {
                spins += 1;
                if spins > 64 {
                    // On few-core hosts the holder needs the CPU.
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Releases the lock acquired through `node`.
    pub fn release(&self, node: &McsNode) {
        let me = node as *const McsNode as usize;
        if node.next.load(Ordering::Acquire) == 0 {
            if self
                .tail
                .compare_exchange(me, 0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            let mut spins = 0u32;
            while node.next.load(Ordering::Acquire) == 0 {
                spins += 1;
                if spins > 64 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        let succ = node.next.load(Ordering::Acquire);
        // SAFETY: the successor is spinning on its own node; it stays alive
        // until we clear its `locked` flag.
        unsafe { &*(succ as *const McsNode) }.locked.store(false, Ordering::Release);
    }
}

/// Shared circular data segment written through raw pointers.
///
/// Writers are guaranteed disjoint regions (by the queue lock in CWL, by
/// reservation in 2LC), which is exactly the aliasing contract the raw
/// writes rely on.
#[derive(Debug)]
struct DataSegment {
    bytes: UnsafeCell<Box<[u8]>>,
}

// SAFETY: concurrent access only through `write_entry`, whose callers
// guarantee disjoint regions.
unsafe impl Sync for DataSegment {}

impl DataSegment {
    fn new(capacity_bytes: u64) -> Self {
        DataSegment { bytes: UnsafeCell::new(vec![0u8; capacity_bytes as usize].into_boxed_slice()) }
    }

    /// Writes `length || payload` at `pos` and flushes the lines.
    ///
    /// Callers must hold the right to `[pos, pos + slot)` exclusively.
    fn write_entry(&self, pos: u64, payload: &[u8]) {
        debug_assert_eq!(payload.len(), PAYLOAD_BYTES);
        unsafe {
            let base = (*self.bytes.get()).as_mut_ptr().add(pos as usize);
            base.cast::<u64>().write_unaligned(PAYLOAD_BYTES as u64);
            std::ptr::copy_nonoverlapping(payload.as_ptr(), base.add(8), payload.len());
            hw::flush_range(base, 8 + payload.len());
        }
    }

    fn read_slot(&self, pos: u64) -> (u64, Vec<u8>) {
        unsafe {
            let base = (*self.bytes.get()).as_ptr().add(pos as usize);
            let len = base.cast::<u64>().read_unaligned();
            let mut payload = vec![0u8; PAYLOAD_BYTES];
            std::ptr::copy_nonoverlapping(base.add(8), payload.as_mut_ptr(), PAYLOAD_BYTES);
            (len, payload)
        }
    }
}

/// Native Copy While Locked.
#[derive(Debug)]
pub struct NativeCwlQueue {
    head: AtomicU64,
    data: DataSegment,
    lock: NativeMcsLock,
    params: QueueParams,
}

impl NativeCwlQueue {
    /// Creates an empty queue.
    pub fn new(params: QueueParams) -> Self {
        NativeCwlQueue {
            head: AtomicU64::new(0),
            data: DataSegment::new(params.capacity_bytes()),
            lock: NativeMcsLock::new(),
            params,
        }
    }

    /// Inserts one entry; returns its absolute byte position.
    pub fn insert(&self, node: &McsNode) -> u64 {
        let cap = self.params.capacity_bytes();
        hw::persist_fence(); // line 3 persist barrier
        self.lock.acquire(node);
        hw::persist_fence(); // line 5
        let h = self.head.load(Ordering::Relaxed);
        let pos = h % cap;
        let payload = EntryCodec::encode(pos, h / cap);
        self.data.write_entry(pos, &payload); // line 7 (copy + flush)
        hw::persist_fence(); // line 8
        self.head.store(h + QueueParams::SLOT_BYTES, Ordering::Release); // line 9
        // SAFETY: &self.head is a live field of self.
        unsafe { hw::flush_cache_line(&self.head as *const _ as *const u8) };
        hw::persist_fence(); // line 11
        self.lock.release(node);
        hw::persist_fence(); // line 13
        h
    }

    /// Current head pointer (absolute bytes).
    pub fn head_bytes(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Validates every entry the head pointer claims; returns the count.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid entry.
    pub fn validate(&self) -> Result<u64, String> {
        validate_segment(&self.data, self.head_bytes(), self.params)
    }
}

/// One 2LC reservation-ring slot.
#[derive(Debug, Default)]
#[repr(align(128))]
struct RingSlot {
    end: AtomicU64,
    state: AtomicU64,
}

const FREE: u64 = 0;
const DONE: u64 = 2;

/// Native Two-Lock Concurrent.
#[derive(Debug)]
pub struct NativeTwoLockQueue {
    head: AtomicU64,
    headv: AtomicU64,
    data: DataSegment,
    reserve: NativeMcsLock,
    update: NativeMcsLock,
    ring: Vec<RingSlot>,
    ticket: AtomicU64,
    front: AtomicU64,
    params: QueueParams,
}

impl NativeTwoLockQueue {
    /// Creates an empty queue.
    pub fn new(params: QueueParams) -> Self {
        NativeTwoLockQueue {
            head: AtomicU64::new(0),
            headv: AtomicU64::new(0),
            data: DataSegment::new(params.capacity_bytes()),
            reserve: NativeMcsLock::new(),
            update: NativeMcsLock::new(),
            ring: (0..64).map(|_| RingSlot::default()).collect(),
            ticket: AtomicU64::new(0),
            front: AtomicU64::new(0),
            params,
        }
    }

    /// Inserts one entry; returns its absolute byte position. `node_r` and
    /// `node_u` are this thread's MCS nodes for the two locks.
    pub fn insert(&self, node_r: &McsNode, node_u: &McsNode) -> u64 {
        let cap = self.params.capacity_bytes();
        // Reserve a region and a ring slot.
        self.reserve.acquire(node_r);
        let start = self.headv.load(Ordering::Relaxed);
        self.headv.store(start + QueueParams::SLOT_BYTES, Ordering::Relaxed);
        let ticket = self.ticket.load(Ordering::Relaxed);
        let slot = &self.ring[(ticket % self.ring.len() as u64) as usize];
        let mut spins = 0u32;
        while slot.state.load(Ordering::Acquire) != FREE {
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        slot.end.store(start + QueueParams::SLOT_BYTES, Ordering::Relaxed);
        slot.state.store(1, Ordering::Release); // PENDING
        self.ticket.store(ticket + 1, Ordering::Relaxed);
        self.reserve.release(node_r);

        // Copy outside any lock (the design's persist concurrency).
        let pos = start % cap;
        let payload = EntryCodec::encode(pos, start / cap);
        self.data.write_entry(pos, &payload);

        // Publish over the contiguous completed prefix.
        self.update.acquire(node_u);
        slot.state.store(DONE, Ordering::Release);
        let mut front = self.front.load(Ordering::Relaxed);
        let mut newhead = None;
        loop {
            let f = &self.ring[(front % self.ring.len() as u64) as usize];
            if f.state.load(Ordering::Acquire) != DONE {
                break;
            }
            newhead = Some(f.end.load(Ordering::Relaxed));
            f.state.store(FREE, Ordering::Release);
            front += 1;
        }
        self.front.store(front, Ordering::Relaxed);
        if let Some(nh) = newhead {
            hw::persist_fence(); // line 27 persist barrier
            self.head.store(nh, Ordering::Release);
            // SAFETY: &self.head is a live field of self.
            unsafe { hw::flush_cache_line(&self.head as *const _ as *const u8) };
        }
        self.update.release(node_u);
        start
    }

    /// Current head pointer (absolute bytes).
    pub fn head_bytes(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Validates every entry the head pointer claims; returns the count.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid entry.
    pub fn validate(&self) -> Result<u64, String> {
        validate_segment(&self.data, self.head_bytes(), self.params)
    }
}

fn validate_segment(data: &DataSegment, head: u64, params: QueueParams) -> Result<u64, String> {
    let slot_bytes = QueueParams::SLOT_BYTES;
    let cap = params.capacity_bytes();
    if !head.is_multiple_of(slot_bytes) {
        return Err(format!("head {head} misaligned"));
    }
    let total = head / slot_bytes;
    let valid = total.min(params.capacity_entries);
    for k in 0..valid {
        let p = head - (valid - k) * slot_bytes;
        let (len, payload) = data.read_slot(p % cap);
        if len != PAYLOAD_BYTES as u64 {
            return Err(format!("slot {}: bad length {len}", p % cap));
        }
        EntryCodec::validate(&payload, p % cap, p / cap)
            .map_err(|e| format!("slot {}: {e}", p % cap))?;
    }
    Ok(valid)
}

/// Which native queue to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Copy While Locked.
    Cwl,
    /// Two-Lock Concurrent.
    TwoLock,
}

/// Measures the native insert rate: `threads` threads each insert
/// `inserts_per_thread` entries; returns aggregate inserts per second.
///
/// This is the paper's *instruction execution rate* measurement (§7), used
/// as the Table 1 normalization denominator and the Figure 3 compute-bound
/// ceiling.
pub fn measure_insert_rate(kind: QueueKind, threads: u32, inserts_per_thread: u64) -> f64 {
    let params = QueueParams::new(8192);
    let total = threads as u64 * inserts_per_thread;
    let elapsed = match kind {
        QueueKind::Cwl => {
            let q = NativeCwlQueue::new(params);
            let start = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        let node = McsNode::new();
                        for _ in 0..inserts_per_thread {
                            q.insert(&node);
                        }
                    });
                }
            });
            start.elapsed()
        }
        QueueKind::TwoLock => {
            let q = NativeTwoLockQueue::new(params);
            let start = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        let node_r = McsNode::new();
                        let node_u = McsNode::new();
                        for _ in 0..inserts_per_thread {
                            q.insert(&node_r, &node_u);
                        }
                    });
                }
            });
            start.elapsed()
        }
    };
    total as f64 / elapsed.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_cwl_single_thread() {
        let q = NativeCwlQueue::new(QueueParams::new(64));
        let node = McsNode::new();
        for _ in 0..20 {
            q.insert(&node);
        }
        assert_eq!(q.head_bytes(), 20 * QueueParams::SLOT_BYTES);
        assert_eq!(q.validate().unwrap(), 20);
    }

    #[test]
    fn native_cwl_multithreaded() {
        let q = NativeCwlQueue::new(QueueParams::new(1024));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let node = McsNode::new();
                    for _ in 0..50 {
                        q.insert(&node);
                    }
                });
            }
        });
        assert_eq!(q.head_bytes(), 200 * QueueParams::SLOT_BYTES);
        assert_eq!(q.validate().unwrap(), 200);
    }

    #[test]
    fn native_2lc_multithreaded() {
        let q = NativeTwoLockQueue::new(QueueParams::new(1024));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let node_r = McsNode::new();
                    let node_u = McsNode::new();
                    for _ in 0..50 {
                        q.insert(&node_r, &node_u);
                    }
                });
            }
        });
        assert_eq!(q.head_bytes(), 200 * QueueParams::SLOT_BYTES);
        assert_eq!(q.validate().unwrap(), 200);
    }

    #[test]
    fn native_2lc_wraps() {
        let q = NativeTwoLockQueue::new(QueueParams::new(8));
        let node_r = McsNode::new();
        let node_u = McsNode::new();
        for _ in 0..20 {
            q.insert(&node_r, &node_u);
        }
        assert_eq!(q.head_bytes(), 20 * QueueParams::SLOT_BYTES);
        assert_eq!(q.validate().unwrap(), 8);
    }

    #[test]
    fn mcs_lock_mutual_exclusion() {
        let lock = NativeMcsLock::new();
        let counter = UnsafeCell::new(0u64);
        struct Shared<'a>(&'a NativeMcsLock, &'a UnsafeCell<u64>);
        unsafe impl Sync for Shared<'_> {}
        let shared = Shared(&lock, &counter);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sh = &shared;
                s.spawn(move || {
                    let node = McsNode::new();
                    for _ in 0..10_000 {
                        sh.0.acquire(&node);
                        // Non-atomic increment under the lock.
                        unsafe { *sh.1.get() += 1 };
                        sh.0.release(&node);
                    }
                });
            }
        });
        assert_eq!(unsafe { *counter.get() }, 40_000);
    }

    #[test]
    fn measured_rate_is_positive() {
        let r = measure_insert_rate(QueueKind::Cwl, 1, 2000);
        assert!(r > 0.0);
        let r = measure_insert_rate(QueueKind::TwoLock, 2, 1000);
        assert!(r > 0.0);
    }
}
