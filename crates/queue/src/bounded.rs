//! Bounded producer/consumer queue: the insert-only queue of §6 extended
//! with a persistent tail pointer and a consumer side.
//!
//! The paper's queue only inserts; once its circular buffer wraps, the
//! oldest head-window entry may be mid-overwrite at failure, and under
//! strand persistency or racing epochs *no* fixed recovery margin bounds
//! the damage (see `QueueParams::recovery_margin`). The classic fix is
//! flow control against a consumer-maintained tail — and persistency
//! gives it teeth through exactly the idiom §5.3 describes for strands:
//!
//! > "a persist strand begins by reading persisted memory locations after
//! > which new persists must be ordered. These reads introduce ordering
//! > dependences through strong persist atomicity, which can then be
//! > enforced with a subsequent persist barrier."
//!
//! The producer *reads the tail pointer* (waiting for space), then issues
//! a persist barrier, then copies. Through strong persist atomicity the
//! copy is ordered after the tail persist the producer observed, so at
//! recovery any visible copy byte implies the recovered tail has already
//! advanced past the slot being overwritten: the window `[tail, head)` is
//! always fully valid — **no recovery margin, under every model,
//! including strand and across wrap-around**. The crash tests verify
//! this, and that removing the barrier reintroduces the corruption.

use crate::entry::{EntryCodec, PAYLOAD_BYTES};
use crate::traced::QueueParams;
use mem_trace::locks::McsLock;
use mem_trace::{Scheduler, ThreadCtx, TracedMem};
use persist_mem::{MemAddr, MemoryImage, CACHE_LINE_BYTES};

/// Placement of a bounded queue in the persistent space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedLayout {
    /// Producer-side head pointer (absolute bytes, monotone).
    pub head: MemAddr,
    /// Consumer-side tail pointer (absolute bytes, monotone, ≤ head).
    pub tail: MemAddr,
    /// Base of the circular data segment.
    pub data: MemAddr,
    /// Sizing.
    pub params: QueueParams,
}

impl BoundedLayout {
    /// Allocates head, tail and data segment.
    ///
    /// # Panics
    ///
    /// Panics on allocation failure (the simulated space is unbounded).
    pub fn allocate<S: Scheduler>(mem: &TracedMem<S>, params: QueueParams) -> Self {
        let head = mem.setup_alloc(CACHE_LINE_BYTES, CACHE_LINE_BYTES).expect("head");
        let tail = mem.setup_alloc(CACHE_LINE_BYTES, CACHE_LINE_BYTES).expect("tail");
        let data = mem
            .setup_alloc(params.capacity_bytes(), CACHE_LINE_BYTES)
            .expect("data segment");
        BoundedLayout { head, tail, data, params }
    }
}

/// Fixed volatile addresses for the bounded queue's locks and MCS nodes
/// (disjoint from the `traced` module's map).
const INSERT_LOCK: MemAddr = MemAddr::volatile(448);
const CONSUME_LOCK: MemAddr = MemAddr::volatile(512);
const NODE_BASE: u64 = 1 << 21;

fn mcs_node(thread: u64, which: u64) -> MemAddr {
    MemAddr::volatile(NODE_BASE + thread * 4 * CACHE_LINE_BYTES + which * CACHE_LINE_BYTES)
}

/// Copy While Locked with a consumer side and wrap-safe flow control.
#[derive(Debug, Clone, Copy)]
pub struct BoundedQueue {
    layout: BoundedLayout,
    insert_lock: McsLock,
    consume_lock: McsLock,
    /// Whether the producer issues the §5.3 read-then-barrier idiom
    /// before copying (disabled only by tests demonstrating the bug).
    tail_read_barrier: bool,
}

impl BoundedQueue {
    /// Creates the queue over an allocated layout.
    pub fn new(layout: BoundedLayout) -> Self {
        BoundedQueue {
            layout,
            insert_lock: McsLock::new(INSERT_LOCK),
            consume_lock: McsLock::new(CONSUME_LOCK),
            tail_read_barrier: true,
        }
    }

    /// Disables the tail-read persist barrier — the deliberately broken
    /// variant used to show the idiom is load-bearing.
    #[must_use]
    pub fn without_tail_read_barrier(mut self) -> Self {
        self.tail_read_barrier = false;
        self
    }

    /// The queue's layout.
    pub fn layout(&self) -> &BoundedLayout {
        &self.layout
    }

    /// Inserts one self-validating entry, blocking (spinning) while the
    /// buffer is full. Returns the absolute byte position.
    pub fn insert<S: Scheduler>(&self, ctx: &ThreadCtx<'_, S>) -> u64 {
        let t = ctx.thread_id().as_u64();
        let node = mcs_node(t, 0);
        let cap = self.layout.params.capacity_bytes();
        let slot_bytes = QueueParams::SLOT_BYTES;

        ctx.persist_barrier();
        self.insert_lock.acquire(ctx, node);
        ctx.mem_barrier();
        ctx.persist_barrier();
        ctx.new_strand();

        let h = ctx.load_u64(self.layout.head);
        // Flow control: wait until the slot we are about to overwrite has
        // been consumed. The tail *read* adopts the tail persist's
        // ordering...
        while h + slot_bytes - ctx.load_u64(self.layout.tail) > cap {
            std::thread::yield_now();
        }
        // ...and this barrier makes the copy depend on it (§5.3): at
        // recovery, a visible copy byte implies the observed tail persist.
        if self.tail_read_barrier {
            ctx.persist_barrier();
            ctx.mem_barrier();
        }

        let pos = h % cap;
        let lap = h / cap;
        let payload = EntryCodec::encode(pos, lap);
        let dst = self.layout.data.add(pos);
        ctx.store_u64(dst, PAYLOAD_BYTES as u64);
        ctx.copy_bytes(dst.add(8), &payload);

        ctx.mem_barrier();
        ctx.persist_barrier();
        ctx.store_u64(self.layout.head, h + slot_bytes);
        ctx.persist_barrier();
        ctx.mem_barrier();
        self.insert_lock.release(ctx, node);
        ctx.persist_barrier();
        h
    }

    /// Pops the oldest entry if one exists; returns its absolute byte
    /// position. The entry is validated before the tail advances.
    ///
    /// # Panics
    ///
    /// Panics if the stored entry fails validation — that would mean the
    /// producers' persist ordering is broken.
    pub fn pop<S: Scheduler>(&self, ctx: &ThreadCtx<'_, S>) -> Option<u64> {
        let t = ctx.thread_id().as_u64();
        let node = mcs_node(t, 1);
        let cap = self.layout.params.capacity_bytes();
        let slot_bytes = QueueParams::SLOT_BYTES;

        self.consume_lock.acquire(ctx, node);
        ctx.mem_barrier();
        let tl = ctx.load_u64(self.layout.tail);
        let h = ctx.load_u64(self.layout.head);
        if tl == h {
            self.consume_lock.release(ctx, node);
            return None;
        }
        let pos = tl % cap;
        let base = self.layout.data.add(pos);
        let len = ctx.load_u64(base);
        assert_eq!(len, PAYLOAD_BYTES as u64, "corrupt entry length at the consumer");
        let mut payload = vec![0u8; PAYLOAD_BYTES];
        ctx.read_bytes(base.add(8), &mut payload);
        EntryCodec::validate(&payload, pos, tl / cap).expect("consumer read a corrupt entry");
        // Order the tail advance after the head/entry state just observed
        // (the loads adopted those persists' ordering; the barrier makes
        // the tail persist inherit it). Without this, a failure could
        // expose tail > head.
        ctx.persist_barrier();
        ctx.mem_barrier();
        // Free the slot: persist the advanced tail. Losing this persist at
        // failure only re-exposes the entry (at-least-once consumption).
        ctx.store_u64(self.layout.tail, tl + slot_bytes);
        ctx.persist_barrier();
        ctx.mem_barrier();
        self.consume_lock.release(ctx, node);
        Some(tl)
    }
}

/// Recovers a bounded queue: the window `[tail, head)` must decode to
/// valid entries; no safety margin is needed (see the module docs).
///
/// # Errors
///
/// Returns a description of the first inconsistency.
pub fn recover_bounded(
    image: &MemoryImage,
    layout: &BoundedLayout,
) -> Result<crate::recovery::RecoveredQueue, String> {
    let slot_bytes = QueueParams::SLOT_BYTES;
    let cap = layout.params.capacity_bytes();
    let head = image.read_u64(layout.head).map_err(|e| e.to_string())?;
    let tail = image.read_u64(layout.tail).map_err(|e| e.to_string())?;
    if head % slot_bytes != 0 || tail % slot_bytes != 0 {
        return Err(format!("misaligned pointers: head {head}, tail {tail}"));
    }
    if tail > head {
        return Err(format!("tail {tail} ahead of head {head}"));
    }
    if head - tail > cap {
        return Err(format!("window {} exceeds capacity {cap}", head - tail));
    }
    let mut entries = Vec::new();
    let mut p = tail;
    while p < head {
        let slot = p % cap;
        let lap = p / cap;
        let base = layout.data.add(slot);
        let len = image.read_u64(base).map_err(|e| e.to_string())?;
        if len != PAYLOAD_BYTES as u64 {
            return Err(format!("entry at slot {slot} (lap {lap}) has length {len}"));
        }
        let mut payload = vec![0u8; PAYLOAD_BYTES];
        image.read(base.add(8), &mut payload).map_err(|e| e.to_string())?;
        EntryCodec::validate(&payload, slot, lap)
            .map_err(|e| format!("entry at slot {slot} (lap {lap}): {e}"))?;
        entries.push(crate::recovery::RecoveredEntry { slot_offset: slot, lap });
        p += slot_bytes;
    }
    Ok(crate::recovery::RecoveredQueue { head_bytes: head, entries })
}

/// Crash-consistency invariant for [`persistency::crash::check`].
pub fn bounded_crash_invariant(
    layout: BoundedLayout,
) -> impl Fn(&MemoryImage) -> Result<(), String> {
    move |image| recover_bounded(image, &layout).map(|_| ())
}

/// Runs a producer/consumer workload: `producers` threads insert
/// `inserts_per_producer` entries each while one consumer thread pops
/// until it has drained them all. Returns the trace and layout.
pub fn run_bounded_workload<S: Scheduler>(
    mem: TracedMem<S>,
    params: QueueParams,
    producers: u32,
    inserts_per_producer: u64,
) -> (mem_trace::Trace, BoundedLayout) {
    let layout = BoundedLayout::allocate(&mem, params);
    let queue = BoundedQueue::new(layout);
    let total = producers as u64 * inserts_per_producer;
    let trace = mem.run(producers + 1, move |ctx| {
        let t = ctx.thread_id().as_u64();
        if t < producers as u64 {
            for i in 0..inserts_per_producer {
                let id = t * inserts_per_producer + i;
                ctx.work_begin(id);
                queue.insert(ctx);
                ctx.work_end(id);
            }
        } else {
            let mut drained = 0;
            while drained < total {
                if queue.pop(ctx).is_some() {
                    drained += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        }
    });
    (trace, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::{FreeRunScheduler, SeededScheduler};
    use persistency::crash::{check, Exploration};
    use persistency::dag::PersistDag;
    use persistency::{AnalysisConfig, Model};

    #[test]
    fn produce_consume_drains_everything() {
        let params = QueueParams::new(8);
        let (trace, layout) =
            run_bounded_workload(TracedMem::new(FreeRunScheduler), params, 2, 20);
        trace.validate_sc().unwrap();
        let image = trace.final_image();
        let q = recover_bounded(&image, &layout).unwrap();
        assert_eq!(q.head_bytes, 40 * QueueParams::SLOT_BYTES);
        assert!(q.entries.is_empty(), "consumer drained the queue");
    }

    #[test]
    fn wrap_with_consumer_is_crash_consistent_under_all_models() {
        // Capacity 4, 16 inserts: four laps of wrap-around. With the tail
        // flow control and the §5.3 read-barrier idiom, every model —
        // including strand, which breaks the consumer-less queue here —
        // recovers cleanly from every sampled cut.
        let params = QueueParams::new(4);
        let (trace, layout) =
            run_bounded_workload(TracedMem::new(SeededScheduler::new(7)), params, 1, 16);
        trace.validate_sc().unwrap();
        for model in Model::ALL {
            let dag = PersistDag::build(&trace, &AnalysisConfig::new(model)).unwrap();
            let report = check(
                &dag,
                Exploration::Sampled { seed: 3, extensions: 200 },
                bounded_crash_invariant(layout),
            )
            .unwrap();
            assert!(report.is_consistent(), "{model}: {report}");
        }
    }

    #[test]
    fn missing_tail_read_barrier_corrupts_under_strand() {
        // Without the read-then-barrier idiom the producer's copy races
        // the tail persist it depends on: a cut can show the overwrite
        // inside the recovered window.
        let params = QueueParams::new(4);
        let mem = TracedMem::new(SeededScheduler::new(7));
        let layout = BoundedLayout::allocate(&mem, params);
        let queue = BoundedQueue::new(layout).without_tail_read_barrier();
        let trace = mem.run(2, move |ctx| {
            if ctx.thread_id().0 == 0 {
                for _ in 0..16 {
                    queue.insert(ctx);
                }
            } else {
                let mut drained = 0;
                while drained < 16 {
                    if queue.pop(ctx).is_some() {
                        drained += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        });
        let dag = PersistDag::build(&trace, &AnalysisConfig::new(Model::Strand)).unwrap();
        let report = check(
            &dag,
            Exploration::Sampled { seed: 5, extensions: 400 },
            bounded_crash_invariant(layout),
        )
        .unwrap();
        assert!(
            !report.is_consistent(),
            "dropping the §5.3 idiom must reintroduce wrap corruption"
        );
    }

    #[test]
    fn pop_on_empty_returns_none() {
        let params = QueueParams::new(4);
        let mem = TracedMem::new(FreeRunScheduler);
        let layout = BoundedLayout::allocate(&mem, params);
        let queue = BoundedQueue::new(layout);
        mem.run(1, move |ctx| {
            assert_eq!(queue.pop(ctx), None);
            queue.insert(ctx);
            assert!(queue.pop(ctx).is_some());
            assert_eq!(queue.pop(ctx), None);
        });
    }

    #[test]
    fn recovery_rejects_inverted_pointers() {
        let mem = TracedMem::new(FreeRunScheduler);
        let layout = BoundedLayout::allocate(&mem, QueueParams::new(4));
        let mut image = MemoryImage::new();
        image.write_u64(layout.tail, 5 * QueueParams::SLOT_BYTES).unwrap();
        image.write_u64(layout.head, QueueParams::SLOT_BYTES).unwrap();
        assert!(recover_bounded(&image, &layout).unwrap_err().contains("ahead"));
    }

    #[test]
    fn recovery_rejects_oversized_window() {
        let mem = TracedMem::new(FreeRunScheduler);
        let layout = BoundedLayout::allocate(&mem, QueueParams::new(4));
        let mut image = MemoryImage::new();
        image.write_u64(layout.head, 9 * QueueParams::SLOT_BYTES).unwrap();
        assert!(recover_bounded(&image, &layout).unwrap_err().contains("capacity"));
    }

    #[test]
    fn multi_producer_seeded_runs_drain() {
        let params = QueueParams::new(8);
        let (trace, layout) =
            run_bounded_workload(TracedMem::new(SeededScheduler::new(11)), params, 3, 5);
        trace.validate_sc().unwrap();
        let q = recover_bounded(&trace.final_image(), &layout).unwrap();
        assert_eq!(q.head_bytes, 15 * QueueParams::SLOT_BYTES);
        assert!(q.entries.is_empty());
    }
}
