//! Self-validating queue entry encoding.
//!
//! The paper inserts 100-byte entries (§7). To let the recovery observer
//! *detect* corruption — a head pointer that ran ahead of its data — each
//! payload is self-describing: it encodes the slot it was written to, the
//! lap of the circular buffer, a deterministic fill pattern, and a
//! checksum. Recovery can then verify, for every entry the head pointer
//! claims valid, that exactly the right bytes persisted.

use core::fmt;

/// Payload size in bytes, matching the paper's 100-byte entries.
pub const PAYLOAD_BYTES: usize = 100;

/// Offsets within the payload.
const SLOT_OFF: usize = 0;
const LAP_OFF: usize = 8;
const FILL_OFF: usize = 16;
const CKSUM_OFF: usize = PAYLOAD_BYTES - 8;

/// Encodes and validates queue entry payloads.
///
/// # Example
///
/// ```rust
/// use pqueue::entry::EntryCodec;
///
/// let payload = EntryCodec::encode(128, 0);
/// assert_eq!(payload.len(), pqueue::PAYLOAD_BYTES);
/// EntryCodec::validate(&payload, 128, 0).unwrap();
/// assert!(EntryCodec::validate(&payload, 256, 0).is_err());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EntryCodec;

/// Why a recovered entry failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EntryError {
    /// The stored checksum does not match the payload bytes.
    BadChecksum,
    /// The entry describes a different slot than it was recovered from.
    WrongSlot {
        /// Slot recorded in the payload.
        found: u64,
        /// Slot the entry was recovered from.
        expected: u64,
    },
    /// The entry belongs to an earlier lap of the circular buffer.
    WrongLap {
        /// Lap recorded in the payload.
        found: u64,
        /// Lap the head pointer implies.
        expected: u64,
    },
    /// The payload has the wrong length.
    BadLength {
        /// Recovered length.
        found: usize,
    },
}

impl fmt::Display for EntryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryError::BadChecksum => f.write_str("entry checksum mismatch"),
            EntryError::WrongSlot { found, expected } => {
                write!(f, "entry names slot {found}, recovered from slot {expected}")
            }
            EntryError::WrongLap { found, expected } => {
                write!(f, "entry from lap {found}, head implies lap {expected}")
            }
            EntryError::BadLength { found } => {
                write!(f, "entry payload is {found} bytes, expected {PAYLOAD_BYTES}")
            }
        }
    }
}

impl std::error::Error for EntryError {}

/// FNV-style multiply-xor checksum, folded a word at a time.
///
/// Recovery validates every entry the head pointer claims on every
/// injected crash image, so this runs in the fuzzer's innermost loop;
/// consuming 8 bytes per round instead of 1 cuts the dependent-multiply
/// chain by 8× while keeping the property that matters: any altered,
/// missing, or stale byte changes the sum.
fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8 bytes"));
        h = h.wrapping_mul(0x100_0000_01b3).rotate_left(23);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl EntryCodec {
    /// Builds the payload for the entry written at byte offset `slot` of
    /// the data segment on circular-buffer lap `lap`.
    pub fn encode(slot: u64, lap: u64) -> Vec<u8> {
        let mut p = vec![0u8; PAYLOAD_BYTES];
        p[SLOT_OFF..SLOT_OFF + 8].copy_from_slice(&slot.to_le_bytes());
        p[LAP_OFF..LAP_OFF + 8].copy_from_slice(&lap.to_le_bytes());
        // Deterministic per-(slot, lap) fill so stale data never matches.
        let mut x = slot.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ lap.wrapping_add(1);
        for b in &mut p[FILL_OFF..CKSUM_OFF] {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (x >> 56) as u8;
        }
        let ck = checksum64(&p[..CKSUM_OFF]);
        p[CKSUM_OFF..].copy_from_slice(&ck.to_le_bytes());
        p
    }

    /// Validates a recovered payload against the slot and lap the head
    /// pointer implies.
    ///
    /// # Errors
    ///
    /// Returns the first [`EntryError`] found.
    pub fn validate(payload: &[u8], slot: u64, lap: u64) -> Result<(), EntryError> {
        if payload.len() != PAYLOAD_BYTES {
            return Err(EntryError::BadLength { found: payload.len() });
        }
        let stored_ck = u64::from_le_bytes(payload[CKSUM_OFF..].try_into().expect("8 bytes"));
        if checksum64(&payload[..CKSUM_OFF]) != stored_ck {
            return Err(EntryError::BadChecksum);
        }
        let found_slot = u64::from_le_bytes(payload[SLOT_OFF..SLOT_OFF + 8].try_into().expect("8 bytes"));
        if found_slot != slot {
            return Err(EntryError::WrongSlot { found: found_slot, expected: slot });
        }
        let found_lap = u64::from_le_bytes(payload[LAP_OFF..LAP_OFF + 8].try_into().expect("8 bytes"));
        if found_lap != lap {
            return Err(EntryError::WrongLap { found: found_lap, expected: lap });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = EntryCodec::encode(0, 0);
        EntryCodec::validate(&p, 0, 0).unwrap();
        let p = EntryCodec::encode(12800, 7);
        EntryCodec::validate(&p, 12800, 7).unwrap();
    }

    #[test]
    fn detects_bit_flip() {
        let mut p = EntryCodec::encode(64, 1);
        p[40] ^= 0x01;
        assert_eq!(EntryCodec::validate(&p, 64, 1), Err(EntryError::BadChecksum));
    }

    #[test]
    fn detects_wrong_slot_and_lap() {
        let p = EntryCodec::encode(64, 1);
        assert!(matches!(
            EntryCodec::validate(&p, 128, 1),
            Err(EntryError::WrongSlot { found: 64, expected: 128 })
        ));
        assert!(matches!(
            EntryCodec::validate(&p, 64, 2),
            Err(EntryError::WrongLap { found: 1, expected: 2 })
        ));
    }

    #[test]
    fn detects_all_zero_payload() {
        // A never-persisted (zero) slot must not validate: this is the
        // "head ran ahead of data" corruption signature.
        let zeros = vec![0u8; PAYLOAD_BYTES];
        assert!(EntryCodec::validate(&zeros, 0, 0).is_err());
    }

    #[test]
    fn distinct_slots_and_laps_differ() {
        assert_ne!(EntryCodec::encode(0, 0), EntryCodec::encode(64, 0));
        assert_ne!(EntryCodec::encode(0, 0), EntryCodec::encode(0, 1));
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(matches!(
            EntryCodec::validate(&[0u8; 10], 0, 0),
            Err(EntryError::BadLength { found: 10 })
        ));
    }
}
