//! Algorithm 1 over an interposable persistence backend.
//!
//! These are the *native-protocol* queues: the same store / cache-line
//! flush / persist-fence sequence the [`crate::native`] queues issue
//! through [`persist_mem::hw`], but expressed against
//! [`persist_mem::PmemBackend`] so the `pfi` fault injector can shadow
//! every persistence event and crash the protocol at arbitrary points.
//! Recovery is shared with every other execution mode:
//! [`crate::recovery::recover`] runs unchanged on the materialized image.
//!
//! Two designs, as in §6 of the paper:
//!
//! - [`PmemCwlQueue`] — Copy While Locked, single inserter. The
//!   [`PmemBarrierMode::Elided`] variant deliberately removes the persist
//!   fence between the entry flush and the head-pointer store; it is the
//!   known-buggy specimen the injector must catch (the head can persist
//!   while its entry is dropped under any model weaker than sequential
//!   strict persistency).
//! - [`PmemTwoLockQueue`] — Two-Lock Concurrent, reservation / completion
//!   split. Completions may finish out of reservation order; the head
//!   pointer only ever advances over the contiguous completed prefix.
//!   Deviation from Algorithm 1: each completion persists its own entry
//!   (flush + fence) *before* marking itself done, instead of relying on a
//!   single barrier at head-update time. This is the conservative
//!   placement that stays correct under strand persistency, where a
//!   barrier in the updating strand does not order entry persists from
//!   other strands; it also makes completed inserts durable as soon as the
//!   head covering them persists, which the injector's linearizable-prefix
//!   check relies on.

use crate::entry::{EntryCodec, PAYLOAD_BYTES};
use crate::traced::{QueueLayout, QueueParams};
use persist_mem::PmemBackend;
use std::collections::VecDeque;

/// Barrier placement for [`PmemCwlQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmemBarrierMode {
    /// The correct protocol: entry persisted (flush + fence) before the
    /// head store that claims it.
    Full,
    /// The fence between the entry flush and the head store is elided:
    /// entry and head end up pending in the same persist epoch, so a crash
    /// may keep the head and drop the entry. Exists to validate the fault
    /// injector (it must report this, stock structures must pass).
    Elided,
}

/// Copy While Locked over a [`PmemBackend`] (single inserter — the lock
/// holder of Algorithm 1; the backend event stream is inherently serial).
#[derive(Debug, Clone)]
pub struct PmemCwlQueue {
    layout: QueueLayout,
    mode: PmemBarrierMode,
    /// Volatile mirror of the head pointer (absolute bytes). Rebuilt from
    /// the image after recovery, lost at crash.
    head: u64,
}

impl PmemCwlQueue {
    /// Creates an empty queue over `layout`.
    pub fn new(layout: QueueLayout, mode: PmemBarrierMode) -> Self {
        PmemCwlQueue { layout, mode, head: 0 }
    }

    /// The queue's persistent layout.
    pub fn layout(&self) -> &QueueLayout {
        &self.layout
    }

    /// Absolute head position (bytes) after the inserts so far.
    pub fn head_bytes(&self) -> u64 {
        self.head
    }

    /// Inserts one self-validating entry; returns the absolute byte
    /// position it was written at.
    pub fn insert<B: PmemBackend>(&mut self, mem: &mut B) -> u64 {
        let cap = self.layout.params.capacity_bytes();
        let slot_bytes = QueueParams::SLOT_BYTES;
        let h = self.head;
        let pos = h % cap;
        let lap = h / cap;
        let dst = self.layout.data.add(pos);

        mem.strand(); // Algorithm 1 line 6
        // Line 7: COPY(data[head], (length, entry), length + sl)
        mem.store_u64(dst, PAYLOAD_BYTES as u64);
        mem.store(dst.add(8), &EntryCodec::encode(pos, lap));
        mem.flush(dst, 8 + PAYLOAD_BYTES as u64);
        if self.mode == PmemBarrierMode::Full {
            mem.fence(); // line 8: entry durable before the head claims it
        }
        // Line 9: head ← head + length + sl
        mem.store_u64(self.layout.head, h + slot_bytes);
        mem.persist(self.layout.head, 8); // line 11
        self.head = h + slot_bytes;
        h
    }
}

/// One reservation in the 2LC volatile insert list.
#[derive(Debug, Clone, Copy)]
struct Reservation {
    start: u64,
    done: bool,
}

/// Two-Lock Concurrent over a [`PmemBackend`].
///
/// [`PmemTwoLockQueue::reserve`] models the critical section under
/// `reserveLock` (volatile only: it assigns the next data-segment region);
/// [`PmemTwoLockQueue::complete`] models the entry copy plus the
/// `updateLock` section. Completions may be issued in any order;
/// the head pointer advances only over the contiguous completed prefix,
/// so the persisted head never exposes a hole.
#[derive(Debug, Clone)]
pub struct PmemTwoLockQueue {
    layout: QueueLayout,
    /// Volatile reservation head (absolute bytes).
    headv: u64,
    /// Volatile mirror of the persisted head pointer.
    head: u64,
    /// Outstanding reservations, oldest first.
    pending: VecDeque<Reservation>,
}

impl PmemTwoLockQueue {
    /// Creates an empty queue over `layout`.
    pub fn new(layout: QueueLayout) -> Self {
        PmemTwoLockQueue { layout, headv: 0, head: 0, pending: VecDeque::new() }
    }

    /// The queue's persistent layout.
    pub fn layout(&self) -> &QueueLayout {
        &self.layout
    }

    /// Persisted head position (bytes) — only reservations below this are
    /// recoverable.
    pub fn head_bytes(&self) -> u64 {
        self.head
    }

    /// Number of reservations not yet covered by the persisted head.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Takes the next data-segment region (Algorithm 1 lines 17–20).
    /// Volatile bookkeeping only; returns the reservation's absolute start.
    pub fn reserve(&mut self) -> u64 {
        let start = self.headv;
        self.headv += QueueParams::SLOT_BYTES;
        self.pending.push_back(Reservation { start, done: false });
        start
    }

    /// Copies and persists the entry for reservation `start`, then
    /// advances the head over the completed prefix (lines 21–31). Returns
    /// the persisted head after the call.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not an outstanding reservation.
    pub fn complete<B: PmemBackend>(&mut self, mem: &mut B, start: u64) -> u64 {
        let cap = self.layout.params.capacity_bytes();
        let r = self
            .pending
            .iter_mut()
            .find(|r| r.start == start)
            .expect("complete() of an outstanding reservation");
        assert!(!r.done, "reservation completed twice");
        r.done = true;

        mem.strand(); // line 21: this copy is its own strand
        // Line 22: COPY(data[start], (length, entry), length + sl)
        let pos = start % cap;
        let lap = start / cap;
        let dst = self.layout.data.add(pos);
        mem.store_u64(dst, PAYLOAD_BYTES as u64);
        mem.store(dst.add(8), &EntryCodec::encode(pos, lap));
        // Entry durable before this insert can be marked done (see module
        // docs for why the fence sits here rather than at head-update).
        mem.persist(dst, 8 + PAYLOAD_BYTES as u64);

        // Lines 23–31: pop the completed prefix, publish the new head.
        let mut newhead = None;
        while self.pending.front().is_some_and(|r| r.done) {
            let r = self.pending.pop_front().expect("checked front");
            newhead = Some(r.start + QueueParams::SLOT_BYTES);
        }
        if let Some(nh) = newhead {
            mem.store_u64(self.layout.head, nh); // line 28
            mem.persist(self.layout.head, 8);
            self.head = nh;
        }
        self.head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery;
    use persist_mem::{DirectPmem, MemAddr};

    fn layout(capacity: u64, margin: u64) -> QueueLayout {
        QueueLayout {
            head: MemAddr::persistent(0),
            data: MemAddr::persistent(persist_mem::CACHE_LINE_BYTES),
            params: QueueParams::new(capacity).with_recovery_margin(margin),
        }
    }

    #[test]
    fn cwl_inserts_recover_over_direct_backend() {
        let layout = layout(8, 1);
        let mut q = PmemCwlQueue::new(layout, PmemBarrierMode::Full);
        let mut mem = DirectPmem::new();
        for _ in 0..5 {
            q.insert(&mut mem);
        }
        let rq = recovery::recover(mem.image(), &layout).unwrap();
        assert_eq!(rq.head_bytes, 5 * QueueParams::SLOT_BYTES);
        assert_eq!(rq.entries.len(), 5);
    }

    #[test]
    fn cwl_wraps_and_respects_margin() {
        let layout = layout(4, 1);
        let mut q = PmemCwlQueue::new(layout, PmemBarrierMode::Full);
        let mut mem = DirectPmem::new();
        for _ in 0..10 {
            q.insert(&mut mem);
        }
        let rq = recovery::recover(mem.image(), &layout).unwrap();
        assert_eq!(rq.head_bytes, 10 * QueueParams::SLOT_BYTES);
        assert_eq!(rq.entries.len(), 3); // capacity − margin after wrap
    }

    #[test]
    fn elided_mode_is_functionally_identical_without_crashes() {
        let layout = layout(8, 1);
        let mut q = PmemCwlQueue::new(layout, PmemBarrierMode::Elided);
        let mut mem = DirectPmem::new();
        for _ in 0..6 {
            q.insert(&mut mem);
        }
        let rq = recovery::recover(mem.image(), &layout).unwrap();
        assert_eq!(rq.entries.len(), 6);
    }

    #[test]
    fn twolock_out_of_order_completion_keeps_prefix() {
        let layout = layout(8, 3);
        let mut q = PmemTwoLockQueue::new(layout);
        let mut mem = DirectPmem::new();
        let a = q.reserve();
        let b = q.reserve();
        let c = q.reserve();
        // Completing the middle and last reservations does not advance the
        // head past the incomplete first one.
        assert_eq!(q.complete(&mut mem, b), 0);
        assert_eq!(q.complete(&mut mem, c), 0);
        assert_eq!(recovery::recover(mem.image(), &layout).unwrap().entries.len(), 0);
        // Completing the first reservation publishes all three.
        assert_eq!(q.complete(&mut mem, a), 3 * QueueParams::SLOT_BYTES);
        let rq = recovery::recover(mem.image(), &layout).unwrap();
        assert_eq!(rq.entries.len(), 3);
        assert_eq!(q.outstanding(), 0);
    }

    #[test]
    fn twolock_wraps_with_margin() {
        let layout = layout(8, 3);
        let mut q = PmemTwoLockQueue::new(layout);
        let mut mem = DirectPmem::new();
        for _ in 0..20 {
            let s = q.reserve();
            q.complete(&mut mem, s);
        }
        let rq = recovery::recover(mem.image(), &layout).unwrap();
        assert_eq!(rq.head_bytes, 20 * QueueParams::SLOT_BYTES);
        assert_eq!(rq.entries.len(), 5); // capacity − margin after wrap
    }

    #[test]
    #[should_panic(expected = "outstanding reservation")]
    fn twolock_rejects_unknown_completion() {
        let layout = layout(8, 3);
        let mut q = PmemTwoLockQueue::new(layout);
        let mut mem = DirectPmem::new();
        q.complete(&mut mem, 999);
    }
}
