//! Thread-safe persistent queues from *Memory Persistency* (ISCA 2014).
//!
//! §6 of the paper introduces a persistent circular-buffer queue as the
//! motivating microbenchmark — the core of write-ahead logs and journaled
//! file systems — in two designs (Algorithm 1):
//!
//! - **Copy While Locked (CWL)**: one lock serializes inserts; each insert
//!   persists the entry (length + payload) into the data segment, then
//!   persists the advanced head pointer.
//! - **Two-Lock Concurrent (2LC)**: a reservation lock assigns disjoint
//!   data-segment regions so entry copies (and their persists) proceed in
//!   parallel; an update lock and a volatile insert list advance the head
//!   pointer only over the contiguous prefix of completed inserts,
//!   preventing holes.
//!
//! Recovery for both: an entry is valid iff the persisted head pointer
//! encompasses its region of the data segment.
//!
//! This crate provides:
//!
//! - [`traced`] — the queues implemented over [`mem_trace::TracedMem`],
//!   annotated with persist barriers and strand barriers exactly as
//!   Algorithm 1 (including the *racing epochs* variant that elides the
//!   barriers around the lock),
//! - [`native`] — the same designs over real memory with real threads, MCS
//!   locks and cache-line flush intrinsics, used to measure the
//!   instruction execution rate (the Table 1 normalization baseline),
//! - [`pmem`] — the same persistence protocols over the interposable
//!   [`persist_mem::PmemBackend`], so the `pfi` fault injector can crash
//!   them at arbitrary store/flush/fence points (including a deliberately
//!   barrier-elided variant used to validate the injector),
//! - [`entry`] — self-validating entry encoding (slot, lap, checksum),
//! - [`recovery`] — queue recovery from a persistent-memory image and the
//!   crash-consistency invariant used with
//!   [`persistency::crash`],
//! - [`bounded`] — an extension with a persistent tail pointer and a
//!   consumer side, whose §5.3 read-then-barrier flow control makes
//!   circular-buffer reuse crash safe under every model.
//!
//! # Example
//!
//! ```rust
//! use mem_trace::{TracedMem, FreeRunScheduler};
//! use pqueue::traced::{QueueParams, BarrierMode, run_cwl_workload};
//! use persistency::{timing, AnalysisConfig, Model};
//!
//! let params = QueueParams::small_test();
//! let (trace, layout) =
//!     run_cwl_workload(TracedMem::new(FreeRunScheduler), params, BarrierMode::Full, 1, 10);
//! let strict = timing::analyze(&trace, &AnalysisConfig::new(Model::Strict));
//! let epoch = timing::analyze(&trace, &AnalysisConfig::new(Model::Epoch));
//! assert!(strict.critical_path > epoch.critical_path);
//! # let _ = layout;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounded;
pub mod entry;
pub mod native;
pub mod pmem;
pub mod recovery;
pub mod traced;

pub use entry::{EntryCodec, PAYLOAD_BYTES};
pub use pmem::{PmemBarrierMode, PmemCwlQueue, PmemTwoLockQueue};
pub use traced::{BarrierMode, QueueLayout, QueueParams};
