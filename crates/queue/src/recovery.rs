//! Queue recovery from a persistent-memory image.
//!
//! §6: "an entry is not valid and recoverable until the head pointer
//! encompasses the associated portion of the data segment." Recovery reads
//! the persisted head pointer and validates every entry it claims: each
//! must carry the right slot, lap and checksum. Any mismatch means the
//! persistency model (or a missing annotation) let the head pointer persist
//! ahead of its data — the corruption the paper's required constraints
//! exist to prevent.

use crate::entry::EntryCodec;
use crate::traced::{QueueLayout, QueueParams};
use crate::PAYLOAD_BYTES;
use persist_mem::MemoryImage;

/// One recovered, validated entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredEntry {
    /// Byte offset of the entry within the data segment.
    pub slot_offset: u64,
    /// Circular-buffer lap the entry was written on.
    pub lap: u64,
}

/// The queue state recovered from a persistent image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredQueue {
    /// Persisted head pointer (absolute bytes, monotone over laps).
    pub head_bytes: u64,
    /// Validated entries, oldest first.
    pub entries: Vec<RecoveredEntry>,
}

/// Recovers and validates a queue from `image`.
///
/// # Errors
///
/// Returns a description of the first corruption found: a misaligned head
/// pointer, a wrong entry length, or an entry failing slot/lap/checksum
/// validation.
pub fn recover(image: &MemoryImage, layout: &QueueLayout) -> Result<RecoveredQueue, String> {
    let mut entries = Vec::new();
    let head_bytes = recover_each(image, layout, |e| entries.push(e))?;
    Ok(RecoveredQueue { head_bytes, entries })
}

/// Validates the queue like [`recover`] but returns only the persisted
/// head pointer, allocating nothing. The hot path for callers (the crash
/// injector) that validate thousands of images and never look at entries.
///
/// # Errors
///
/// As [`recover`].
pub fn recover_head(image: &MemoryImage, layout: &QueueLayout) -> Result<u64, String> {
    recover_each(image, layout, |_| {})
}

/// Shared recovery walk: validates every recoverable entry, handing each
/// to `sink`, and returns the persisted head pointer.
fn recover_each(
    image: &MemoryImage,
    layout: &QueueLayout,
    mut sink: impl FnMut(RecoveredEntry),
) -> Result<u64, String> {
    let slot_bytes = QueueParams::SLOT_BYTES;
    let cap = layout.params.capacity_bytes();
    let head = image.read_u64(layout.head).map_err(|e| e.to_string())?;
    if head % slot_bytes != 0 {
        return Err(format!("head pointer {head} is not a multiple of the slot size"));
    }
    // In-flight inserts write at absolute positions in
    // [head, head + margin·slot); once those positions exceed the segment
    // size they overwrite the oldest window entries, which are therefore
    // not recoverable (see `QueueParams::recovery_margin`).
    let margin = layout.params.recovery_margin;
    let window_start = head.saturating_sub(cap);
    let unsafe_end = (head + margin * slot_bytes).saturating_sub(cap).min(head);
    let safe_start = window_start.max(unsafe_end);
    let valid = (head - safe_start) / slot_bytes;
    let mut payload = [0u8; PAYLOAD_BYTES];
    for k in 0..valid {
        // Absolute byte position of the k-th oldest recoverable entry.
        let p = head - (valid - k) * slot_bytes;
        let slot = p % cap;
        let lap = p / cap;
        let base = layout.data.add(slot);
        let len = image.read_u64(base).map_err(|e| e.to_string())?;
        if len != PAYLOAD_BYTES as u64 {
            return Err(format!(
                "entry at slot {slot} (lap {lap}) has length {len}, expected {PAYLOAD_BYTES}"
            ));
        }
        image.read(base.add(8), &mut payload).map_err(|e| e.to_string())?;
        EntryCodec::validate(&payload, slot, lap)
            .map_err(|e| format!("entry at slot {slot} (lap {lap}): {e}"))?;
        sink(RecoveredEntry { slot_offset: slot, lap });
    }
    Ok(head)
}

/// Builds the crash-consistency invariant for a queue layout, suitable for
/// [`persistency::crash::check`]: every recoverable state must decode to a
/// valid queue.
pub fn crash_invariant(layout: QueueLayout) -> impl Fn(&MemoryImage) -> Result<(), String> {
    move |image| recover(image, &layout).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traced::{run_cwl_workload, BarrierMode};
    use mem_trace::{FreeRunScheduler, TracedMem};
    use persist_mem::MemAddr;

    #[test]
    fn empty_queue_recovers_empty() {
        let mem = TracedMem::new(FreeRunScheduler);
        let layout = QueueLayout::allocate(&mem, QueueParams::new(8));
        let image = MemoryImage::new();
        let q = recover(&image, &layout).unwrap();
        assert_eq!(q.head_bytes, 0);
        assert!(q.entries.is_empty());
    }

    #[test]
    fn detects_head_ahead_of_data() {
        let mem = TracedMem::new(FreeRunScheduler);
        let layout = QueueLayout::allocate(&mem, QueueParams::new(8));
        let mut image = MemoryImage::new();
        // Head claims one entry, but the data segment is zero-filled.
        image.write_u64(layout.head, QueueParams::SLOT_BYTES).unwrap();
        let err = recover(&image, &layout).unwrap_err();
        assert!(err.contains("length"), "unexpected error: {err}");
    }

    #[test]
    fn detects_misaligned_head() {
        let mem = TracedMem::new(FreeRunScheduler);
        let layout = QueueLayout::allocate(&mem, QueueParams::new(8));
        let mut image = MemoryImage::new();
        image.write_u64(layout.head, 13).unwrap();
        assert!(recover(&image, &layout).unwrap_err().contains("multiple"));
    }

    #[test]
    fn detects_stale_lap_data() {
        // Write a valid lap-0 entry, then claim via head that the slot
        // holds a lap-1 entry: the lap check must fire.
        let params = QueueParams::new(4);
        let (trace, layout) =
            run_cwl_workload(TracedMem::new(FreeRunScheduler), params, BarrierMode::Full, 1, 4);
        let mut image = trace.final_image();
        // Head after one full lap + 1 entry = 5 slots, but slot 0 still
        // holds lap-0 data in this doctored image.
        image.write_u64(layout.head, 5 * QueueParams::SLOT_BYTES).unwrap();
        let err = recover(&image, &layout).unwrap_err();
        assert!(err.contains("lap"), "unexpected error: {err}");
    }

    #[test]
    fn invariant_closure_matches_recover() {
        let params = QueueParams::new(8);
        let (trace, layout) =
            run_cwl_workload(TracedMem::new(FreeRunScheduler), params, BarrierMode::Full, 1, 3);
        let inv = crash_invariant(layout);
        assert!(inv(&trace.final_image()).is_ok());
        let mut broken = trace.final_image();
        let entry1 = layout.data.add(QueueParams::SLOT_BYTES + 8);
        let _ = entry1; // corrupt one payload byte of the second entry
        let mut b = [0u8; 1];
        broken.read(entry1.add(20), &mut b).unwrap();
        broken.write(entry1.add(20), &[b[0] ^ 1]).unwrap();
        assert!(inv(&broken).is_err());
    }

    #[test]
    fn volatile_state_is_irrelevant_to_recovery() {
        let params = QueueParams::new(8);
        let (trace, layout) =
            run_cwl_workload(TracedMem::new(FreeRunScheduler), params, BarrierMode::Full, 2, 3);
        let mut image = trace.final_image();
        image.drop_volatile();
        let q = recover(&image, &layout).unwrap();
        assert_eq!(q.entries.len(), 6);
        // Recovery never touches the volatile space.
        assert_eq!(image.read_u64(MemAddr::volatile(256)).unwrap(), 0);
    }
}
