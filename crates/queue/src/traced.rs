//! Algorithm 1 over traced memory, with the paper's persistency
//! annotations.
//!
//! Both queue designs insert fixed-size entries into a persistent circular
//! buffer and advance a persistent head pointer. Inserts are padded to
//! 64-byte alignment (the paper's anti-false-sharing padding, §7), so the
//! head advances by [`QueueParams::SLOT_BYTES`] per insert.
//!
//! The annotations follow Algorithm 1 line by line; [`BarrierMode::Racing`]
//! elides the barriers around the lock acquire/release ("removing allows
//! race"), turning Copy While Locked's cross-thread persist ordering over
//! to strong persist atomicity — the paper's *racing epochs*
//! configuration.

use crate::entry::{EntryCodec, PAYLOAD_BYTES};
use mem_trace::locks::McsLock;
use mem_trace::{Scheduler, ThreadCtx, Trace, TracedMem};
use persist_mem::{MemAddr, CACHE_LINE_BYTES};

/// Ring-slot states for the 2LC volatile insert list.
const FREE: u64 = 0;
const PENDING: u64 = 1;
const DONE: u64 = 2;

/// Barrier placement variant for Copy While Locked (Algorithm 1 lines 5
/// and 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierMode {
    /// All barriers present: epochs never race across the lock ("Epoch" in
    /// Table 1).
    Full,
    /// The barriers around lock accesses are elided: persist epochs race
    /// intentionally and head-pointer persists are ordered by strong
    /// persist atomicity alone ("Racing Epochs" in Table 1).
    Racing,
}

/// Sizing of a persistent queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueParams {
    /// Number of entry slots in the circular data segment.
    pub capacity_entries: u64,
    /// Recovery safety margin: once the buffer wraps, up to this many of
    /// the *oldest* entries in the head pointer's window may be mid-
    /// overwrite by in-flight inserts at failure, so recovery skips them.
    ///
    /// One is sound for Copy While Locked with full barriers (the single
    /// lock holder is the only in-flight copy, and its data persists are
    /// ordered after the previous head persist). Racing epochs and strand
    /// persistency remove that cross-insert ordering, so *no* fixed margin
    /// bounds the overwrite window once the buffer wraps — size the queue
    /// so it does not wrap, or add a drain (`persist_sync`) before reuse.
    pub recovery_margin: u64,
}

impl QueueParams {
    /// Bytes per slot: 8-byte length + 100-byte payload, padded to the
    /// next 64-byte boundary (= 128).
    pub const SLOT_BYTES: u64 = {
        let raw = 8 + PAYLOAD_BYTES as u64;
        raw.div_ceil(CACHE_LINE_BYTES) * CACHE_LINE_BYTES
    };

    /// Creates parameters with the given capacity and a recovery margin of
    /// one entry (sound for Copy While Locked with full barriers).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_entries` is zero.
    pub fn new(capacity_entries: u64) -> Self {
        assert!(capacity_entries > 0, "queue capacity must be positive");
        QueueParams { capacity_entries, recovery_margin: 1 }
    }

    /// Sets the recovery safety margin (see [`QueueParams::recovery_margin`]).
    ///
    /// # Panics
    ///
    /// Panics if `margin` is not smaller than the capacity.
    #[must_use]
    pub fn with_recovery_margin(mut self, margin: u64) -> Self {
        assert!(margin < self.capacity_entries, "margin must leave recoverable entries");
        self.recovery_margin = margin;
        self
    }

    /// A small queue for exhaustive crash-consistency tests.
    pub fn small_test() -> Self {
        Self::new(16)
    }

    /// Data segment size in bytes.
    pub fn capacity_bytes(self) -> u64 {
        self.capacity_entries * Self::SLOT_BYTES
    }
}

/// Placement of a queue in the persistent address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueLayout {
    /// Address of the 8-byte persistent head pointer.
    pub head: MemAddr,
    /// Base of the circular data segment.
    pub data: MemAddr,
    /// Parameters the queue was created with.
    pub params: QueueParams,
}

impl QueueLayout {
    /// Allocates head pointer and data segment from a traced memory's
    /// allocator (cache-line aligned, head on its own line).
    ///
    /// # Panics
    ///
    /// Panics if allocation fails (the simulated space is effectively
    /// unbounded, so this indicates a bug).
    pub fn allocate<S: Scheduler>(mem: &TracedMem<S>, params: QueueParams) -> Self {
        let head = mem
            .setup_alloc(CACHE_LINE_BYTES, CACHE_LINE_BYTES)
            .expect("head allocation");
        let data = mem
            .setup_alloc(params.capacity_bytes(), CACHE_LINE_BYTES)
            .expect("data segment allocation");
        QueueLayout { head, data, params }
    }

    /// `true` if `addr` falls on the head pointer's word.
    pub fn is_head(&self, addr: MemAddr) -> bool {
        addr.space() == self.head.space()
            && addr.offset() >= self.head.offset()
            && addr.offset() < self.head.offset() + 8
    }

    /// `true` if `addr` falls inside the data segment.
    pub fn is_data(&self, addr: MemAddr) -> bool {
        addr.space() == self.data.space()
            && addr.offset() >= self.data.offset()
            && addr.offset() < self.data.offset() + self.params.capacity_bytes()
    }

    /// The slot index an in-segment address belongs to.
    pub fn slot_of(&self, addr: MemAddr) -> Option<u64> {
        self.is_data(addr)
            .then(|| (addr.offset() - self.data.offset()) / QueueParams::SLOT_BYTES)
    }
}

/// Volatile-space memory map shared by the traced queues.
///
/// All traced-lock state, the 2LC reservation structures and per-thread
/// MCS queue nodes live at fixed, cache-line-separated volatile addresses.
#[derive(Debug, Clone, Copy)]
struct VolatileMap;

impl VolatileMap {
    const QUEUE_LOCK: MemAddr = MemAddr::volatile(64);
    const RESERVE_LOCK: MemAddr = MemAddr::volatile(128);
    const UPDATE_LOCK: MemAddr = MemAddr::volatile(192);
    const HEADV: MemAddr = MemAddr::volatile(256);
    const RING_FRONT: MemAddr = MemAddr::volatile(320);
    const RING_TICKET: MemAddr = MemAddr::volatile(384);
    const RING_BASE: u64 = 4096;
    const RING_LEN: u64 = 64;
    const THREAD_BASE: u64 = 1 << 20;

    /// Ring slot `i`: end value at +0, state at +8 (one cache line each).
    fn ring_slot(i: u64) -> MemAddr {
        MemAddr::volatile(Self::RING_BASE + (i % Self::RING_LEN) * CACHE_LINE_BYTES)
    }

    /// Per-thread MCS queue nodes (three locks max, one line each).
    fn mcs_node(thread: u64, which: u64) -> MemAddr {
        MemAddr::volatile(Self::THREAD_BASE + thread * 4 * CACHE_LINE_BYTES + which * CACHE_LINE_BYTES)
    }
}

/// Copy While Locked (Algorithm 1, `INSERTCWL`).
#[derive(Debug, Clone, Copy)]
pub struct CwlQueue {
    layout: QueueLayout,
    lock: McsLock,
    mode: BarrierMode,
}

impl CwlQueue {
    /// Creates the queue over an allocated layout.
    pub fn new(layout: QueueLayout, mode: BarrierMode) -> Self {
        CwlQueue { layout, lock: McsLock::new(VolatileMap::QUEUE_LOCK), mode }
    }

    /// The queue's persistent layout.
    pub fn layout(&self) -> &QueueLayout {
        &self.layout
    }

    /// Inserts one self-validating entry, following Algorithm 1's
    /// annotation placement. Returns the byte position (absolute,
    /// monotone) the entry was written at.
    pub fn insert<S: Scheduler>(&self, ctx: &ThreadCtx<'_, S>) -> u64 {
        let t = ctx.thread_id().as_u64();
        let node = VolatileMap::mcs_node(t, 0);
        let cap = self.layout.params.capacity_bytes();
        let slot_bytes = QueueParams::SLOT_BYTES;

        ctx.persist_barrier(); // line 3
        self.lock.acquire(ctx, node); // line 4
        // Memory barrier: on a relaxed consistency model the critical
        // section needs acquire ordering; under strict persistency this is
        // also what orders the persists (§4.1). A no-op for the SC models.
        ctx.mem_barrier();
        if self.mode == BarrierMode::Full {
            ctx.persist_barrier(); // line 5 ("removing allows race")
        }
        ctx.new_strand(); // line 6 (strand persistency only)

        // line 7: COPY(data[head], (length, entry), length + sl)
        let h = ctx.load_u64(self.layout.head);
        let pos = h % cap;
        let lap = h / cap;
        let payload = EntryCodec::encode(pos, lap);
        let dst = self.layout.data.add(pos);
        ctx.store_u64(dst, PAYLOAD_BYTES as u64);
        ctx.copy_bytes(dst.add(8), &payload);

        ctx.mem_barrier(); // entry data visible before the head store (RMO)
        ctx.persist_barrier(); // line 8
        ctx.store_u64(self.layout.head, h + slot_bytes); // line 9
        if self.mode == BarrierMode::Full {
            ctx.persist_barrier(); // line 11 ("removing allows race")
        }
        ctx.mem_barrier(); // release ordering for the unlock (RMO)
        self.lock.release(ctx, node); // line 12
        ctx.persist_barrier(); // line 13
        h
    }
}

/// Two-Lock Concurrent (Algorithm 1, `INSERT2LC`).
///
/// The volatile insert list is a fixed ring: reservations take slots in
/// order under `reserveLock`; completions mark their slot done under
/// `updateLock` and advance the head pointer over the contiguous done
/// prefix, so the persisted head never exposes a hole.
#[derive(Debug, Clone, Copy)]
pub struct TwoLockQueue {
    layout: QueueLayout,
    reserve: McsLock,
    update: McsLock,
}

impl TwoLockQueue {
    /// Creates the queue over an allocated layout.
    pub fn new(layout: QueueLayout) -> Self {
        TwoLockQueue {
            layout,
            reserve: McsLock::new(VolatileMap::RESERVE_LOCK),
            update: McsLock::new(VolatileMap::UPDATE_LOCK),
        }
    }

    /// The queue's persistent layout.
    pub fn layout(&self) -> &QueueLayout {
        &self.layout
    }

    /// Inserts one self-validating entry. Returns the byte position the
    /// entry was written at.
    pub fn insert<S: Scheduler>(&self, ctx: &ThreadCtx<'_, S>) -> u64 {
        let t = ctx.thread_id().as_u64();
        let node_r = VolatileMap::mcs_node(t, 1);
        let node_u = VolatileMap::mcs_node(t, 2);
        let cap = self.layout.params.capacity_bytes();
        let slot_bytes = QueueParams::SLOT_BYTES;

        // line 17: LOCK(reserveLock)
        self.reserve.acquire(ctx, node_r);
        // line 18: start ← headV; headV ← headV + length + sl
        let start = ctx.load_u64(VolatileMap::HEADV);
        ctx.store_u64(VolatileMap::HEADV, start + slot_bytes);
        // line 19: node ← insertList.append(headV)
        let ticket = ctx.load_u64(VolatileMap::RING_TICKET);
        let slot = VolatileMap::ring_slot(ticket);
        // Wait for the ring slot to be free (bounded list; freed under
        // updateLock by whoever pops it).
        while ctx.load_u64(slot.add(8)) != FREE {
            std::thread::yield_now();
        }
        ctx.store_u64(slot, start + slot_bytes); // end value to publish
        ctx.store_u64(slot.add(8), PENDING);
        ctx.store_u64(VolatileMap::RING_TICKET, ticket + 1);
        ctx.mem_barrier(); // release ordering for the unlock (RMO)
        // line 20: UNLOCK(reserveLock)
        self.reserve.release(ctx, node_r);

        ctx.new_strand(); // line 21

        // line 22: COPY(data[start], (length, entry), length + sl)
        let pos = start % cap;
        let lap = start / cap;
        let payload = EntryCodec::encode(pos, lap);
        let dst = self.layout.data.add(pos);
        ctx.store_u64(dst, PAYLOAD_BYTES as u64);
        ctx.copy_bytes(dst.add(8), &payload);

        // Release ordering on a relaxed consistency model: the entry copy
        // must be visible (and, under strict persistency, persistent-
        // ordered) before this insert is marked complete.
        ctx.mem_barrier();
        // line 23: LOCK(updateLock)
        self.update.acquire(ctx, node_u);
        // line 24: (oldest, newHead) ← insertList.remove(node)
        ctx.store_u64(slot.add(8), DONE);
        let mut front = ctx.load_u64(VolatileMap::RING_FRONT);
        let mut newhead = None;
        loop {
            let fslot = VolatileMap::ring_slot(front);
            if ctx.load_u64(fslot.add(8)) != DONE {
                break;
            }
            newhead = Some(ctx.load_u64(fslot));
            ctx.store_u64(fslot.add(8), FREE);
            front += 1;
        }
        ctx.store_u64(VolatileMap::RING_FRONT, front);
        // lines 26–30: if oldest then persist barrier; head ← newHead
        if let Some(nh) = newhead {
            ctx.mem_barrier(); // completed entries visible before head (RMO)
            ctx.persist_barrier(); // line 27
            ctx.store_u64(self.layout.head, nh); // line 28
        }
        // line 31: UNLOCK(updateLock)
        self.update.release(ctx, node_u);
        start
    }
}

/// Runs a Copy While Locked insert workload and returns the trace and the
/// queue's layout (for recovery and dependence classification).
///
/// Every insert is wrapped in `WorkBegin`/`WorkEnd` markers with a globally
/// unique id, so analyses can report per-insert critical path and insert
/// distances.
pub fn run_cwl_workload<S: Scheduler>(
    mem: TracedMem<S>,
    params: QueueParams,
    mode: BarrierMode,
    threads: u32,
    inserts_per_thread: u64,
) -> (Trace, QueueLayout) {
    let layout = QueueLayout::allocate(&mem, params);
    let queue = CwlQueue::new(layout, mode);
    let trace = mem.run(threads, |ctx| {
        let t = ctx.thread_id().as_u64();
        for i in 0..inserts_per_thread {
            let id = t * inserts_per_thread + i;
            ctx.work_begin(id);
            queue.insert(ctx);
            ctx.work_end(id);
        }
    });
    (trace, layout)
}

/// Runs a Two-Lock Concurrent insert workload; see [`run_cwl_workload`].
pub fn run_2lc_workload<S: Scheduler>(
    mem: TracedMem<S>,
    params: QueueParams,
    threads: u32,
    inserts_per_thread: u64,
) -> (Trace, QueueLayout) {
    let layout = QueueLayout::allocate(&mem, params);
    let queue = TwoLockQueue::new(layout);
    let trace = mem.run(threads, |ctx| {
        let t = ctx.thread_id().as_u64();
        for i in 0..inserts_per_thread {
            let id = t * inserts_per_thread + i;
            ctx.work_begin(id);
            queue.insert(ctx);
            ctx.work_end(id);
        }
    });
    (trace, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery;
    use mem_trace::{FreeRunScheduler, SeededScheduler};
    use persistency::{timing, AnalysisConfig, Model};

    #[test]
    fn slot_size_is_128() {
        assert_eq!(QueueParams::SLOT_BYTES, 128);
    }

    #[test]
    fn cwl_single_thread_inserts_all() {
        let params = QueueParams::new(64);
        let (trace, layout) =
            run_cwl_workload(TracedMem::new(FreeRunScheduler), params, BarrierMode::Full, 1, 20);
        trace.validate_sc().unwrap();
        let image = trace.final_image();
        let q = recovery::recover(&image, &layout).unwrap();
        assert_eq!(q.head_bytes, 20 * QueueParams::SLOT_BYTES);
        assert_eq!(q.entries.len(), 20);
    }

    #[test]
    fn cwl_multithreaded_inserts_all() {
        let params = QueueParams::new(256);
        let (trace, layout) =
            run_cwl_workload(TracedMem::new(FreeRunScheduler), params, BarrierMode::Full, 4, 10);
        trace.validate_sc().unwrap();
        let q = recovery::recover(&trace.final_image(), &layout).unwrap();
        assert_eq!(q.head_bytes, 40 * QueueParams::SLOT_BYTES);
        assert_eq!(q.entries.len(), 40);
    }

    #[test]
    fn cwl_racing_mode_preserves_functional_behavior() {
        let params = QueueParams::new(256);
        let (trace, layout) =
            run_cwl_workload(TracedMem::new(FreeRunScheduler), params, BarrierMode::Racing, 4, 10);
        trace.validate_sc().unwrap();
        let q = recovery::recover(&trace.final_image(), &layout).unwrap();
        assert_eq!(q.entries.len(), 40);
    }

    #[test]
    fn twolock_single_thread_inserts_all() {
        let params = QueueParams::new(64);
        let (trace, layout) = run_2lc_workload(TracedMem::new(FreeRunScheduler), params, 1, 20);
        trace.validate_sc().unwrap();
        let q = recovery::recover(&trace.final_image(), &layout).unwrap();
        assert_eq!(q.head_bytes, 20 * QueueParams::SLOT_BYTES);
        assert_eq!(q.entries.len(), 20);
    }

    #[test]
    fn twolock_multithreaded_no_holes() {
        let params = QueueParams::new(256);
        let (trace, layout) = run_2lc_workload(TracedMem::new(FreeRunScheduler), params, 4, 15);
        trace.validate_sc().unwrap();
        let q = recovery::recover(&trace.final_image(), &layout).unwrap();
        assert_eq!(q.head_bytes, 60 * QueueParams::SLOT_BYTES);
        assert_eq!(q.entries.len(), 60);
    }

    #[test]
    fn twolock_seeded_interleavings_recover() {
        for seed in [1, 2, 3] {
            let params = QueueParams::new(128);
            let (trace, layout) =
                run_2lc_workload(TracedMem::new(SeededScheduler::new(seed)), params, 3, 8);
            trace.validate_sc().unwrap();
            let q = recovery::recover(&trace.final_image(), &layout).unwrap();
            assert_eq!(q.entries.len(), 24, "seed {seed}");
        }
    }

    #[test]
    fn wrap_around_overwrites_old_laps() {
        let params = QueueParams::new(4); // tiny: wraps after 4 inserts
        let (trace, layout) =
            run_cwl_workload(TracedMem::new(FreeRunScheduler), params, BarrierMode::Full, 1, 10);
        let q = recovery::recover(&trace.final_image(), &layout).unwrap();
        assert_eq!(q.head_bytes, 10 * QueueParams::SLOT_BYTES);
        // Only the last `capacity - recovery_margin` entries are
        // recoverable once the buffer wraps.
        assert_eq!(q.entries.len(), 3);
    }

    #[test]
    fn cwl_critical_path_ordering_matches_paper() {
        // Table 1 shape, single thread: strict ≫ epoch > strand.
        let params = QueueParams::new(256);
        let (trace, _) =
            run_cwl_workload(TracedMem::new(FreeRunScheduler), params, BarrierMode::Full, 1, 50);
        let cp = |m| timing::analyze(&trace, &AnalysisConfig::new(m)).critical_path_per_work();
        let strict = cp(Model::Strict);
        let epoch = cp(Model::Epoch);
        let strand = cp(Model::Strand);
        // Strict serializes the ~14 data-word persists plus the head.
        assert!(strict >= 14.0, "strict {strict}");
        // Epoch: data persists concurrent; ~2 levels per insert.
        assert!((1.5..=3.5).contains(&epoch), "epoch {epoch}");
        // Strand: head persists coalesce; far below one level per insert.
        assert!(strand < 0.5, "strand {strand}");
    }

    #[test]
    fn strict_under_rmo_matches_epoch_for_cwl() {
        // §4.1: "a programmer seeking to maximize persist performance must
        // rely either on relaxed consistency (with the concomitant
        // challenges of correct program labelling) or ... thread
        // concurrency." With the RMO memory barriers placed at the lock
        // and head-update points, strict persistency on a relaxed model
        // exposes the same concurrency epoch persistency gets from its
        // persist barriers.
        let params = QueueParams::new(256);
        let (trace, _) =
            run_cwl_workload(TracedMem::new(FreeRunScheduler), params, BarrierMode::Full, 1, 50);
        let cp = |m| timing::analyze(&trace, &AnalysisConfig::new(m)).critical_path_per_work();
        let rmo = cp(Model::StrictRmo);
        let epoch = cp(Model::Epoch);
        let strict = cp(Model::Strict);
        assert!(
            (rmo - epoch).abs() <= 1.0,
            "strict-rmo {rmo} should match epoch {epoch} for the annotated queue"
        );
        assert!(rmo < strict / 3.0, "strict-rmo {rmo} vs sc-strict {strict}");
    }

    #[test]
    fn racing_epochs_improve_multithreaded_epoch_cp() {
        let params = QueueParams::new(1024);
        let mk = |mode| {
            let (trace, _) = run_cwl_workload(
                TracedMem::new(SeededScheduler::new(77)),
                params,
                mode,
                4,
                12,
            );
            timing::analyze(&trace, &AnalysisConfig::new(Model::Epoch)).critical_path_per_work()
        };
        let full = mk(BarrierMode::Full);
        let racing = mk(BarrierMode::Racing);
        assert!(
            racing < full,
            "racing epochs should shorten the critical path: racing {racing} vs full {full}"
        );
    }

    #[test]
    fn layout_classification() {
        let mem = TracedMem::new(FreeRunScheduler);
        let layout = QueueLayout::allocate(&mem, QueueParams::new(4));
        assert!(layout.is_head(layout.head));
        assert!(!layout.is_data(layout.head));
        assert!(layout.is_data(layout.data.add(100)));
        assert_eq!(layout.slot_of(layout.data.add(130)), Some(1));
        assert_eq!(layout.slot_of(layout.head), None);
    }
}
