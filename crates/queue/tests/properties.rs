//! Property tests for queue recovery on damaged images.
//!
//! The crash-fuzz injector ([`pfi`]) feeds `pqueue::recovery::recover`
//! images where arbitrary cache lines were dropped or torn. These
//! properties pin down the contract that makes that safe: recovery is
//! total (an `Err`, never a panic, on any byte soup), and it never
//! *resurrects* an entry whose length/payload line did not persist — a
//! dropped line within the head pointer's claimed window always surfaces
//! as a recovery error rather than a silently shortened queue.

use persist_mem::{MemAddr, MemoryImage, CACHE_LINE_BYTES};
use pqueue::entry::EntryCodec;
use pqueue::recovery::recover;
use pqueue::traced::{QueueLayout, QueueParams};
use pqueue::PAYLOAD_BYTES;
use proptest::prelude::*;

const SLOT: u64 = QueueParams::SLOT_BYTES;

fn layout(capacity: u64, margin: u64) -> QueueLayout {
    QueueLayout {
        head: MemAddr::persistent(0),
        data: MemAddr::persistent(CACHE_LINE_BYTES),
        params: QueueParams::new(capacity).with_recovery_margin(margin),
    }
}

/// The image a crash-free run of `inserts` inserts would persist.
fn valid_image(layout: &QueueLayout, inserts: u64) -> MemoryImage {
    let cap = layout.params.capacity_bytes();
    let mut img = MemoryImage::new();
    for k in 0..inserts {
        let p = k * SLOT;
        let (slot, lap) = (p % cap, p / cap);
        let base = layout.data.add(slot);
        img.write_u64(base, PAYLOAD_BYTES as u64).unwrap();
        img.write(base.add(8), &EntryCodec::encode(slot, lap)).unwrap();
    }
    img.write_u64(layout.head, inserts * SLOT).unwrap();
    img
}

/// Absolute byte positions recovery will claim for this head value
/// (mirrors the margin window arithmetic in `recovery::recover`).
fn claimed_positions(layout: &QueueLayout, head: u64) -> Vec<u64> {
    let cap = layout.params.capacity_bytes();
    let window_start = head.saturating_sub(cap);
    let unsafe_end = (head + layout.params.recovery_margin * SLOT).saturating_sub(cap).min(head);
    let safe_start = window_start.max(unsafe_end);
    (0..(head - safe_start) / SLOT).map(|k| safe_start + k * SLOT).collect()
}

proptest! {
    /// Recovery is total: any image — random writes over the queue's
    /// footprint plus an arbitrary head word — yields `Ok` or `Err`,
    /// never a panic, and an `Ok` never claims more entries than the
    /// margin window allows.
    #[test]
    fn recovery_never_panics_on_arbitrary_images(
        capacity in 1u64..16,
        margin_frac in 0u64..16,
        head in prop_oneof![
            (0u64..64).prop_map(|n| n * SLOT), // aligned, plausible
            any::<u64>(),                      // garbage
        ],
        writes in prop::collection::vec(
            (0u64..{ 64 + 16 * SLOT }, prop::collection::vec(any::<u8>(), 1..32)),
            0..48
        )
    ) {
        let lay = layout(capacity, margin_frac % capacity);
        let mut img = MemoryImage::new();
        for (off, bytes) in &writes {
            img.write(MemAddr::persistent(*off), bytes).unwrap();
        }
        img.write_u64(lay.head, head).unwrap();
        if let Ok(q) = recover(&img, &lay) {
            prop_assert_eq!(q.head_bytes, head);
            prop_assert_eq!(q.entries.len(), claimed_positions(&lay, head).len());
        }
    }

    /// A crash-free image recovers exactly: the persisted head and every
    /// entry in the margin window, oldest first, on the right laps.
    #[test]
    fn crash_free_images_recover_exactly(
        capacity in 1u64..12,
        margin_frac in 0u64..12,
        inserts in 0u64..30,
    ) {
        let lay = layout(capacity, margin_frac % capacity);
        let img = valid_image(&lay, inserts);
        let q = recover(&img, &lay).unwrap();
        prop_assert_eq!(q.head_bytes, inserts * SLOT);
        let cap = lay.params.capacity_bytes();
        let want: Vec<(u64, u64)> =
            claimed_positions(&lay, inserts * SLOT).iter().map(|p| (p % cap, p / cap)).collect();
        let got: Vec<(u64, u64)> =
            q.entries.iter().map(|e| (e.slot_offset, e.lap)).collect();
        prop_assert_eq!(got, want);
    }

    /// Dropping the line carrying a claimed entry's length word (as an
    /// unpersisted cache line would read after a crash — zeros, stale
    /// bytes from the previous lap, or a torn half-write) never yields a
    /// recovered queue still containing that entry: recovery reports the
    /// corruption instead of resurrecting it.
    #[test]
    fn dropped_entry_lines_are_never_resurrected(
        capacity in 2u64..12,
        margin_frac in 0u64..12,
        inserts in 1u64..30,
        pick in any::<u64>(),
        damage in prop_oneof![
            Just(0u8),       // line never persisted: reads zero
            Just(1u8),       // stale previous-lap entry under the head
            Just(2u8),       // torn: only the first 8-byte unit landed
        ],
    ) {
        let lay = layout(capacity, margin_frac % capacity);
        let cap = lay.params.capacity_bytes();
        let img = valid_image(&lay, inserts);
        let claimed = claimed_positions(&lay, inserts * SLOT);
        // margin < capacity and inserts >= 1 guarantee a non-empty window
        prop_assert!(!claimed.is_empty());
        let p = claimed[(pick % claimed.len() as u64) as usize];
        let (slot, lap) = (p % cap, p / cap);
        let base = lay.data.add(slot);

        let mut broken = img.clone();
        match damage {
            0 => broken.write(base, &vec![0u8; SLOT as usize]).unwrap(),
            1 => {
                // What the slot held one lap ago (zero if never written).
                broken.write(base, &vec![0u8; SLOT as usize]).unwrap();
                if lap > 0 {
                    broken.write_u64(base, PAYLOAD_BYTES as u64).unwrap();
                    broken.write(base.add(8), &EntryCodec::encode(slot, lap - 1)).unwrap();
                }
            }
            _ => {
                let keep = base; // length word persisted, payload did not
                broken.write(base, &vec![0u8; SLOT as usize]).unwrap();
                broken.write_u64(keep, PAYLOAD_BYTES as u64).unwrap();
            }
        }

        let got = recover(&broken, &lay);
        match got {
            Ok(q) => {
                // All-or-nothing: recovery may only succeed if it does not
                // claim the damaged slot at this lap (impossible here —
                // the slot sits inside the claimed window — so any Ok is
                // a resurrection).
                prop_assert!(
                    !q.entries.iter().any(|e| e.slot_offset == slot && e.lap == lap),
                    "recovery resurrected slot {} lap {} after its line was dropped",
                    slot, lap
                );
                prop_assert!(false, "damage inside the claimed window went undetected");
            }
            Err(e) => prop_assert!(!e.is_empty()),
        }
    }

    /// A truncated image — only a byte prefix of the persistent footprint
    /// survived — never panics recovery, and a successful recovery never
    /// invents entries the intact image did not contain.
    #[test]
    fn truncated_images_never_panic_or_invent_entries(
        capacity in 1u64..10,
        inserts in 0u64..24,
        cut_frac in 0u64..=64,
    ) {
        let lay = layout(capacity, 0);
        let img = valid_image(&lay, inserts);
        let full_len = (CACHE_LINE_BYTES + lay.params.capacity_bytes()) as usize;
        let mut bytes = vec![0u8; full_len];
        img.read(MemAddr::persistent(0), &mut bytes).unwrap();
        let cut = (cut_frac as usize * full_len) / 64;
        let mut truncated = MemoryImage::new();
        truncated.write(MemAddr::persistent(0), &bytes[..cut]).unwrap();

        if let Ok(q) = recover(&truncated, &lay) {
            let intact = recover(&img, &lay).unwrap();
            for e in &q.entries {
                prop_assert!(
                    intact.entries.contains(e),
                    "truncation invented entry {:?}", e
                );
            }
        }
    }
}
