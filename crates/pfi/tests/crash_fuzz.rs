//! Acceptance tests for the crash-fuzz subsystem: the stock structures
//! survive heavy seeded injection under every persistency model (including
//! multi-crash and torn persists), the barrier-elided queue is caught with
//! a shrunk minimal reproducer, and cells are bit-for-bit deterministic.

use persistency::Model;
use pfi::fuzz::{run_cell, FuzzCell, FuzzConfig, Structure};
use pfi::report;

#[test]
fn stock_structures_survive_all_models() {
    let cfg = FuzzConfig { ops: 24, injections: 1000, seed: 7, ..FuzzConfig::default() };
    let mut cells = Vec::new();
    for structure in Structure::STOCK {
        for model in Model::ALL {
            let r = run_cell(&cfg, FuzzCell { structure, model });
            assert!(
                r.passed(),
                "{}/{} failed: {:?}",
                r.structure,
                r.model,
                r.first_failure
            );
            cells.push(r);
        }
    }
    // The transaction target's rollback recovery must actually have been
    // re-crashed somewhere in the matrix.
    let txn_recovery_crashes: u64 = cells
        .iter()
        .filter(|c| c.structure == "txn")
        .map(|c| c.recovery_crashes)
        .sum();
    assert!(txn_recovery_crashes > 0, "multi-crash never exercised rollback");
    assert!(report::all_passed(&cells));
}

#[test]
fn stock_structures_survive_torn_persists() {
    let cfg = FuzzConfig { ops: 16, injections: 400, seed: 3, torn: true, ..FuzzConfig::default() };
    for structure in Structure::STOCK {
        for model in Model::ALL {
            let r = run_cell(&cfg, FuzzCell { structure, model });
            assert!(
                r.passed(),
                "{}/{} failed with torn persists: {:?}",
                r.structure,
                r.model,
                r.first_failure
            );
        }
    }
}

#[test]
fn elided_queue_is_caught_and_shrunk_under_weak_models() {
    let cfg = FuzzConfig { ops: 24, injections: 1000, seed: 7, ..FuzzConfig::default() };
    for model in [Model::StrictRmo, Model::Epoch, Model::Bpfs, Model::Strand] {
        let r = run_cell(&cfg, FuzzCell { structure: Structure::CwlElided, model });
        assert!(!r.passed(), "{model}: elided barrier escaped injection");
        let f = r.first_failure.expect("first failure is recorded");
        // The shrunk reproducer pins the failure to the dropped entry:
        // minimal crash point, at least one dropped line, and recovery
        // (not the durability bound) rejecting the image.
        assert!(!f.dropped_lines.is_empty(), "{model}: no dropped lines in {f:?}");
        assert!(f.crash_point > 0 && f.crash_point <= r.events, "{model}: {f:?}");
        assert!(!f.during_recovery, "{model}: first failure needs no recovery crash");
    }
    // Under sequentially-strict persistency the head store cannot outrun
    // the entry stores, so even the elided variant is safe.
    let r = run_cell(&cfg, FuzzCell { structure: Structure::CwlElided, model: Model::Strict });
    assert!(r.passed(), "strict: {:?}", r.first_failure);
}

#[test]
fn reports_are_deterministic_for_fixed_seed() {
    let cfg = FuzzConfig { ops: 16, injections: 300, seed: 42, ..FuzzConfig::default() };
    let cells = || -> Vec<_> {
        let mut out = Vec::new();
        for structure in [Structure::Cwl, Structure::Txn, Structure::CwlElided] {
            for model in [Model::Strict, Model::Epoch, Model::Strand] {
                out.push(run_cell(&cfg, FuzzCell { structure, model }));
            }
        }
        out
    };
    let a = cells();
    let b = cells();
    assert_eq!(a, b);
    assert_eq!(report::render(&cfg, &a), report::render(&cfg, &b));
}

#[test]
fn distinct_seeds_change_the_draws_but_not_verdicts() {
    let base = FuzzConfig { ops: 16, injections: 300, ..FuzzConfig::default() };
    for seed in [1u64, 2, 3] {
        let cfg = FuzzConfig { seed, ..base };
        let stock = run_cell(&cfg, FuzzCell { structure: Structure::Kv, model: Model::Epoch });
        assert!(stock.passed(), "seed {seed}: {:?}", stock.first_failure);
        let broken =
            run_cell(&cfg, FuzzCell { structure: Structure::CwlElided, model: Model::Epoch });
        assert!(!broken.passed(), "seed {seed}: elided barrier escaped");
    }
}
