//! Differential test: the delta replayer's checkpoint-ladder images
//! against the clone-and-replay oracle ([`FragmentSet::materialize`]).
//!
//! For every fuzz structure and every persistency model, crash cases are
//! drawn over the structure's real recorded workload — systematic and
//! random crash points, torn persists enabled — and the replayer's image
//! must equal the oracle's **byte for byte**, extents included. After
//! every injection the replayer must also restore its scratch image to
//! the recording's base exactly.

use mem_trace::rng::SmallRng;
use persist_mem::AtomicPersistSize;
use persistency::Model;
use pfi::fuzz::Structure;
use pfi::inject::FragmentSet;
use pfi::replay::Replayer;
use pfi::shadow::ShadowPmem;

#[test]
fn replayer_images_match_oracle_for_every_structure_and_model() {
    for structure in Structure::ALL {
        let target = structure.target();
        let mut shadow = ShadowPmem::new();
        target.run(&mut shadow, 10);
        let rec = shadow.into_recording();
        let frags = FragmentSet::build(&rec, AtomicPersistSize::default());
        let points = rec.events.len() + 1;
        for model in Model::ALL {
            let mut replayer = Replayer::new(&frags, &rec, model);
            let mut rng = SmallRng::seed_from_u64(0x5EED ^ points as u64);
            for i in 0..120u64 {
                // Same point schedule as the fuzz loop: sweep even
                // injections, draw odd ones. Torn persists on.
                let point = if i % 2 == 0 {
                    (i as usize / 2) % points
                } else {
                    rng.gen_below(points as u64) as usize
                };
                let case = frags.draw(model, point, &mut rng, true);
                replayer.load(&case);
                let oracle = frags.materialize(&rec.base, model, &case);
                assert_eq!(
                    replayer.image(),
                    &oracle,
                    "{} {model}: injection {i} at point {point}",
                    structure.name()
                );
                replayer.reset();
                assert_eq!(
                    replayer.image(),
                    &rec.base,
                    "{} {model}: reset after injection {i}",
                    structure.name()
                );
            }
        }
    }
}

#[test]
fn replayer_survives_back_to_back_loads_without_reset() {
    // load() must self-reset a dirty image, so interleaved shrink probes
    // cannot leak state between cases.
    let target = Structure::Kv.target();
    let mut shadow = ShadowPmem::new();
    target.run(&mut shadow, 8);
    let rec = shadow.into_recording();
    let frags = FragmentSet::build(&rec, AtomicPersistSize::default());
    let mut replayer = Replayer::new(&frags, &rec, Model::Epoch);
    let mut rng = SmallRng::seed_from_u64(42);
    let points = rec.events.len() + 1;
    for _ in 0..40 {
        let point = rng.gen_below(points as u64) as usize;
        let case = frags.draw(Model::Epoch, point, &mut rng, true);
        replayer.load(&case); // no reset between iterations
        let oracle = frags.materialize(&rec.base, Model::Epoch, &case);
        assert_eq!(replayer.image(), &oracle);
    }
}
