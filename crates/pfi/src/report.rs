//! JSON rendering of crash-fuzz results (schema `pfi_crash_fuzz_v1`).
//!
//! Hand-rolled like the rest of the workspace's reporting (no serde in
//! the dependency closure). The report is self-contained: configuration,
//! overall verdict, and one object per cell with its shrunk first
//! failure, so CI can archive a single artifact.

use crate::fuzz::{CellReport, FuzzConfig};

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `true` if every cell passed.
pub fn all_passed(cells: &[CellReport]) -> bool {
    cells.iter().all(CellReport::passed)
}

/// Renders a full crash-fuzz report as pretty-printed JSON.
pub fn render(cfg: &FuzzConfig, cells: &[CellReport]) -> String {
    render_with_meta(cfg, cells, None)
}

/// Like [`render`], but embeds a pre-rendered single-line JSON `meta`
/// object (run provenance; see `obsv::runmeta`). The meta line is the
/// only part of the report that may vary between identically-configured
/// runs, so determinism checks drop it with a line filter.
pub fn render_with_meta(cfg: &FuzzConfig, cells: &[CellReport], meta: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"pfi_crash_fuzz_v1\",\n");
    if let Some(m) = meta {
        debug_assert!(!m.contains('\n'), "meta must render as one line");
        out.push_str(&format!("  \"meta\": {m},\n"));
    }
    out.push_str(&format!(
        "  \"config\": {{\"ops\": {}, \"injections\": {}, \"seed\": {}, \"multi_crash\": {}, \"torn\": {}}},\n",
        cfg.ops, cfg.injections, cfg.seed, cfg.multi_crash, cfg.torn
    ));
    out.push_str(&format!("  \"pass\": {},\n", all_passed(cells)));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"structure\": \"{}\", \"model\": \"{}\", \"events\": {}, \"injections\": {}, \"recovery_crashes\": {}, \"failures\": {}, \"first_failure\": ",
            esc(c.structure), esc(c.model), c.events, c.injections, c.recovery_crashes, c.failures
        ));
        match &c.first_failure {
            None => out.push_str("null"),
            Some(f) => {
                let lines = f
                    .dropped_lines
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", ");
                let second = f
                    .second_crash_point
                    .map_or("null".to_string(), |p| p.to_string());
                out.push_str(&format!(
                    "{{\"injection\": {}, \"crash_point\": {}, \"second_crash_point\": {}, \"during_recovery\": {}, \"dropped_lines\": [{}], \"message\": \"{}\"}}",
                    f.injection, f.crash_point, second, f.during_recovery, lines, esc(&f.message)
                ));
            }
        }
        out.push('}');
        if i + 1 < cells.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::FailureReport;

    #[test]
    fn renders_pass_and_failure_cells() {
        let cells = vec![
            CellReport {
                structure: "cwl",
                model: "strict",
                events: 10,
                injections: 5,
                recovery_crashes: 0,
                failures: 0,
                first_failure: None,
            },
            CellReport {
                structure: "cwl-elided",
                model: "epoch",
                events: 10,
                injections: 5,
                recovery_crashes: 0,
                failures: 2,
                first_failure: Some(FailureReport {
                    injection: 1,
                    crash_point: 7,
                    second_crash_point: None,
                    during_recovery: false,
                    dropped_lines: vec![1, 2],
                    message: "entry \"lost\"".into(),
                }),
            },
        ];
        let json = render(&FuzzConfig::default(), &cells);
        assert!(json.contains("\"pass\": false"));
        assert!(json.contains("\"dropped_lines\": [1, 2]"));
        assert!(json.contains("entry \\\"lost\\\""));
        assert!(!all_passed(&cells));
        // Minimal structural sanity: braces balance.
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
    }
}
