//! The per-cell crash-fuzz loop.
//!
//! A *cell* is one (structure × model) pair. [`CellPlan::new`] records the
//! target's workload once; injections then run against that recording
//! through a pooled delta [`Replayer`] — O(touched lines) per crash image
//! instead of a base-image clone plus full fragment replay. Even injection
//! indices sweep crash points systematically, odd ones draw them (and the
//! survivor sets) from a small deterministic RNG. Every injection seeds
//! its *own* RNG stream from `(seed, structure, model, injection)`, so a
//! cell can be sharded across workers at any boundary — see
//! [`CellPlan::run_shard`] and [`CellPlan::merge`] — and the merged report
//! is byte-identical for any worker count or shard split. [`run_cell`]
//! is the single-shard convenience wrapper. The first failure in a cell
//! (lowest injection index across shards) is shrunk to the earliest crash
//! point and smallest dropped set that still fail; later failures are
//! only counted.
//!
//! When the target's recovery writes (the undo log), its recovery script
//! is replayed through a fresh shadow and a *second* crash is injected
//! into it (multi-crash), checking that recovery is itself
//! crash-consistent. Scripts whose writes are byte-level no-ops on the
//! crash image are skipped — a second crash over no-op writes cannot
//! change the image, so the leg is redundant (see [`script_mutates`]).

use crate::inject::{CrashCase, FragmentSet};
use crate::replay::Replayer;
use crate::shadow::{Recording, ShadowEvent, ShadowPmem};
use crate::targets::{CwlTarget, FuzzTarget, KvTarget, TwoLockTarget, TxnTarget};
use mem_trace::rng::SmallRng;
use obsv::{series, tracefmt};
use persist_mem::{AtomicPersistSize, MemoryImage};
use persistency::Model;
use pstruct::txn::RecoveryStep;

/// Crash-fuzz parameters, shared by every cell of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Logical operations in the recorded workload.
    pub ops: u64,
    /// Crashes injected per cell.
    pub injections: u64,
    /// Base seed; mixed with the cell identity per cell.
    pub seed: u64,
    /// Inject a second crash into write-ful recovery scripts.
    pub multi_crash: bool,
    /// Allow torn (sub-fragment) persists at drop boundaries.
    pub torn: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { ops: 24, injections: 1000, seed: 0, multi_crash: true, torn: false }
    }
}

/// The structures the fuzzer knows how to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structure {
    /// Copy While Locked, full barriers.
    Cwl,
    /// Copy While Locked with the entry-persist fence elided — the
    /// known-buggy specimen the injector must catch.
    CwlElided,
    /// Two-Lock Concurrent.
    TwoLock,
    /// Persistent KV table.
    Kv,
    /// Undo-log transactions (write-ful recovery: the multi-crash target).
    Txn,
}

impl Structure {
    /// Every structure, stock ones first.
    pub const ALL: [Structure; 5] =
        [Structure::Cwl, Structure::TwoLock, Structure::Kv, Structure::Txn, Structure::CwlElided];

    /// The structures expected to survive fuzzing.
    pub const STOCK: [Structure; 4] =
        [Structure::Cwl, Structure::TwoLock, Structure::Kv, Structure::Txn];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            Structure::Cwl => "cwl",
            Structure::CwlElided => "cwl-elided",
            Structure::TwoLock => "2lc",
            Structure::Kv => "kv",
            Structure::Txn => "txn",
        }
    }

    /// Parses a report name back into a structure.
    pub fn from_name(name: &str) -> Option<Structure> {
        Structure::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Builds the target driving this structure.
    pub fn target(self) -> Box<dyn FuzzTarget> {
        match self {
            Structure::Cwl => Box::new(CwlTarget::new()),
            Structure::CwlElided => Box::new(CwlTarget::elided()),
            Structure::TwoLock => Box::new(TwoLockTarget::new()),
            Structure::Kv => Box::new(KvTarget::new()),
            Structure::Txn => Box::new(TxnTarget::new()),
        }
    }
}

/// One (structure × model) fuzz cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzCell {
    /// The structure under test.
    pub structure: Structure,
    /// The persistency model governing what crashes may drop.
    pub model: Model,
}

/// The first failure of a cell, shrunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureReport {
    /// Injection index that first failed.
    pub injection: u64,
    /// Crash point (events executed) after shrinking.
    pub crash_point: usize,
    /// For multi-crash failures: the crash point within recovery.
    pub second_crash_point: Option<usize>,
    /// Whether the failure needed a crash during recovery.
    pub during_recovery: bool,
    /// Cache lines dropped or torn by the (shrunk) failing crash.
    pub dropped_lines: Vec<u64>,
    /// What the recovery or the checker rejected.
    pub message: String,
}

/// Outcome of one fuzz cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellReport {
    /// Structure name.
    pub structure: &'static str,
    /// Model name.
    pub model: &'static str,
    /// Events in the recorded workload.
    pub events: usize,
    /// Crashes injected.
    pub injections: u64,
    /// Crashes additionally injected into recovery (multi-crash).
    pub recovery_crashes: u64,
    /// Injections whose recovery or check failed.
    pub failures: u64,
    /// The first failure, shrunk to a minimal reproducer.
    pub first_failure: Option<FailureReport>,
}

impl CellReport {
    /// `true` if the cell survived every injection.
    pub fn passed(&self) -> bool {
        self.failures == 0
    }
}

/// Mixes the base seed with the cell identity (FNV-1a over the names), so
/// each cell owns an independent, worker-count-independent stream.
fn cell_seed(seed: u64, cell: FuzzCell) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in cell.structure.name().bytes().chain([0u8]).chain(cell.model.name().bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Derives injection `i`'s private RNG seed from the cell seed (a
/// splitmix64-style finalizer). Giving every injection its own stream is
/// what makes shard boundaries invisible in the results.
fn injection_seed(cell_seed: u64, i: u64) -> u64 {
    let mut z = cell_seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands a recovery script into the event stream a second crash can be
/// injected into — exactly what replaying it through a [`ShadowPmem`]
/// rebased over the crash image would record (store + flush per write,
/// fence per barrier), computed without the shadow: the recovery script
/// never loads, so the stream is a pure function of the script and the
/// two full-image clones a shadow rebase pays per leg are dead weight.
/// `out` is reused across calls.
fn recovery_events(script: &[RecoveryStep], out: &mut Vec<ShadowEvent>) {
    out.clear();
    for step in script {
        match step {
            RecoveryStep::Write { addr, value } => {
                out.push(ShadowEvent::Store { addr: *addr, data: value.to_le_bytes().to_vec() });
                out.push(ShadowEvent::Flush { addr: *addr, len: 8 });
            }
            RecoveryStep::Barrier => out.push(ShadowEvent::Fence),
        }
    }
}

/// Does applying the script change the image? A script whose writes all
/// restore bytes the image already holds is a no-op: a second crash at any
/// point of it leaves the image byte-identical, re-recovery computes the
/// same script, and the check re-evaluates the already-passing state — so
/// the multi-crash leg is provably redundant and can be skipped. This is
/// what makes the undo-log target delta-replay-aware: the common case (a
/// crash image whose durable log header is already idle) stops paying the
/// per-injection image clone, recovery re-record, and fragment rebuild.
fn script_mutates(image: &MemoryImage, script: &[RecoveryStep]) -> bool {
    script.iter().any(|step| match step {
        RecoveryStep::Write { addr, value } => image.read_u64(*addr).ok() != Some(*value),
        RecoveryStep::Barrier => false,
    })
}

/// Runs first-crash recovery + checks through the delta replayer. On
/// success returns the recovery script; when `scratch` is provided and the
/// script actually mutates the image, the pre-recovery image (the inputs a
/// second crash needs) is copied into it — allocation-free after the first
/// use — and the returned flag is set. The replayer is always left reset.
fn eval_first(
    target: &dyn FuzzTarget,
    replayer: &mut Replayer<'_>,
    case: &CrashCase,
    scratch: Option<&mut MemoryImage>,
) -> Result<(bool, Vec<RecoveryStep>), String> {
    replayer.load(case);
    let script = match target.recovery_script(replayer.image()) {
        Ok(s) => s,
        Err(e) => {
            replayer.reset();
            return Err(format!("recovery rejected the image: {e}"));
        }
    };
    let mut took_image = false;
    if let Some(scratch) = scratch {
        if script_mutates(replayer.image(), &script) {
            scratch.clone_from(replayer.image());
            took_image = true;
        }
    }
    let (completed, begun) = replayer.ops_at(case.point);
    replayer.apply_recovery(&script);
    let res = target.check(replayer.image(), completed, begun);
    replayer.reset();
    res?;
    Ok((took_image, script))
}

/// Runs the second-crash leg: materialize the mid-recovery image (into the
/// caller's reusable scratch), run recovery *again* on it, check against
/// the original op history.
#[allow(clippy::too_many_arguments)]
fn eval_second(
    target: &dyn FuzzTarget,
    frags2: &FragmentSet,
    base: &MemoryImage,
    img2: &mut MemoryImage,
    model: Model,
    case2: &CrashCase,
    completed: u64,
    begun: u64,
) -> Result<(), String> {
    frags2.materialize_into(img2, base, model, case2);
    let script2 = target
        .recovery_script(img2)
        .map_err(|e| format!("re-recovery rejected the image: {e}"))?;
    for step in &script2 {
        if let RecoveryStep::Write { addr, value } = step {
            img2.write_u64(*addr, *value).expect("recovery write in range");
        }
    }
    target.check(img2, completed, begun)
}

/// The outcome of one contiguous injection range of a cell. Shards are
/// pure functions of `(plan, range)`, so merging them reproduces the
/// serial report exactly whatever the partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Injections this shard ran.
    pub injections: u64,
    /// Crashes additionally injected into recovery (multi-crash).
    pub recovery_crashes: u64,
    /// Injections whose recovery or check failed.
    pub failures: u64,
    /// The shard's earliest failure, shrunk.
    pub first_failure: Option<FailureReport>,
}

/// Timeline track group (`pid`) for the crash-fuzz matrix; one lane per
/// (structure × model) cell.
const PFI_PID: u64 = 20;

/// Injections accumulated per series point: the injections/sec series
/// needs window-level resolution, not per-injection points, so the
/// clock read and registry touch happen once per batch.
const INJ_BATCH: u64 = 64;

/// Per-shard time-resolved sink for one fuzz cell: a wall-clock
/// injections/sec series per model, plus shrink instants on the cell's
/// timeline lane. This layer runs on the wall clock — unlike the
/// deterministic `pfi.*` counters in [`CellPlan::run_shard`] — so it is
/// only armed by explicit `--series-ns` / `--timeline` requests and
/// carries no worker-count determinism claim.
struct CellTelemetry {
    /// `pfi.win.injections.{model}`, when series recording is active.
    inj_series: Option<String>,
    /// `(pid, tid)` of the cell's timeline lane, when recording.
    track: Option<(u64, u64)>,
    /// Injections accumulated since the last series point.
    pending: u64,
}

impl CellTelemetry {
    fn new(cell: FuzzCell) -> Self {
        let track = tracefmt::recording().then(|| {
            let si =
                Structure::ALL.iter().position(|&s| s == cell.structure).unwrap_or(0) as u64;
            let mi = Model::ALL.iter().position(|&m| m == cell.model).unwrap_or(0) as u64;
            let tid = si * (Model::ALL.len() as u64 + 1) + mi + 1;
            tracefmt::name_process(PFI_PID, "crash-fuzz");
            tracefmt::name_thread(
                PFI_PID,
                tid,
                &format!("{}/{}", cell.structure.name(), cell.model.name()),
            );
            (PFI_PID, tid)
        });
        CellTelemetry {
            inj_series: series::active()
                .then(|| format!("pfi.win.injections.{}", cell.model.name())),
            track,
            pending: 0,
        }
    }

    /// Accounts one completed injection; spills a series point per batch.
    fn injected(&mut self) {
        if self.inj_series.is_none() {
            return;
        }
        self.pending += 1;
        if self.pending >= INJ_BATCH {
            self.spill();
        }
    }

    /// Writes the pending injection count as a series point, dated now.
    fn spill(&mut self) {
        if self.pending > 0 {
            if let Some(name) = &self.inj_series {
                series::add(name, tracefmt::now_ns() as u64, self.pending);
            }
            self.pending = 0;
        }
    }

    /// Marks a shrunk failure on the timeline and the shrink series.
    fn shrunk(&self, f: &FailureReport) {
        let t = tracefmt::now_ns();
        if let Some((pid, tid)) = self.track {
            tracefmt::instant(
                pid,
                tid,
                "shrink",
                t,
                &[
                    ("injection", f.injection.to_string()),
                    ("crash_point", f.crash_point.to_string()),
                    ("during_recovery", f.during_recovery.to_string()),
                ],
            );
        }
        series::add("pfi.win.shrinks", t as u64, 1);
    }
}

/// A fuzz cell prepared for (possibly parallel) injection: the recorded
/// workload, its fragments, and the target. Shareable across worker
/// threads; each [`CellPlan::run_shard`] call builds its own delta
/// [`Replayer`] over the shared recording.
pub struct CellPlan {
    cfg: FuzzConfig,
    cell: FuzzCell,
    target: Box<dyn FuzzTarget>,
    rec: Recording,
    frags: FragmentSet,
    seed: u64,
}

impl std::fmt::Debug for CellPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellPlan")
            .field("cell", &self.cell)
            .field("events", &self.rec.events.len())
            .finish_non_exhaustive()
    }
}

impl CellPlan {
    /// Records the cell's workload and prepares injection state.
    pub fn new(cfg: &FuzzConfig, cell: FuzzCell) -> Self {
        let target = cell.structure.target();
        let mut shadow = ShadowPmem::new();
        target.run(&mut shadow, cfg.ops);
        let rec = shadow.into_recording();
        let frags = FragmentSet::build(&rec, AtomicPersistSize::default());
        CellPlan { cfg: *cfg, cell, target, rec, frags, seed: cell_seed(cfg.seed, cell) }
    }

    /// Total injections the plan's config asks for.
    pub fn injections(&self) -> u64 {
        self.cfg.injections
    }

    /// The cell this plan fuzzes.
    pub fn cell(&self) -> FuzzCell {
        self.cell
    }

    /// Runs injections `lo..hi`. Deterministic for a fixed plan and range,
    /// independent of how the full range is partitioned. (The optional
    /// time-resolved layer — injections/sec series and shrink instants —
    /// runs on the wall clock and is exempt from that determinism.)
    pub fn run_shard(&self, lo: u64, hi: u64) -> ShardReport {
        let target = self.target.as_ref();
        let model = self.cell.model;
        let cfg = &self.cfg;
        let points = self.rec.events.len() as u64 + 1;
        let mut tel = CellTelemetry::new(self.cell);
        let mut replayer = Replayer::new(&self.frags, &self.rec, model);
        // Multi-crash-leg scratch, reused across the whole shard
        // (clone_from keeps the allocations): the pre-recovery image, the
        // recovery event stream, and the second-crash materialization
        // target.
        let mut scratch = MemoryImage::new();
        let mut leg_events: Vec<ShadowEvent> = Vec::new();
        let mut leg_image = MemoryImage::new();

        let mut failures = 0u64;
        let mut recovery_crashes = 0u64;
        let mut first_failure: Option<FailureReport> = None;

        for i in lo..hi.min(cfg.injections) {
            let mut rng = SmallRng::seed_from_u64(injection_seed(self.seed, i));
            // Even injections sweep crash points systematically; odd ones
            // are random, as are all survivor draws.
            let point = if i % 2 == 0 {
                ((i / 2) % points) as usize
            } else {
                rng.gen_below(points) as usize
            };
            let case = self.frags.draw(model, point, &mut rng, cfg.torn);

            let scratch_for = cfg.multi_crash.then_some(&mut scratch);
            match eval_first(target, &mut replayer, &case, scratch_for) {
                Err(_) => {
                    failures += 1;
                    if first_failure.is_none() {
                        let shrunk = self.frags.shrink(model, &case, |c| {
                            eval_first(target, &mut replayer, c, None).is_err()
                        });
                        let message = eval_first(target, &mut replayer, &shrunk, None)
                            .expect_err("shrunk case still fails");
                        first_failure = Some(FailureReport {
                            injection: i,
                            crash_point: shrunk.point,
                            second_crash_point: None,
                            during_recovery: false,
                            dropped_lines: self.frags.dropped_lines(model, &shrunk),
                            message,
                        });
                        tel.shrunk(first_failure.as_ref().expect("just set"));
                    }
                }
                Ok((true, script)) => {
                    recovery_crashes += 1;
                    let img = &scratch;
                    recovery_events(&script, &mut leg_events);
                    let frags2 =
                        FragmentSet::from_events(&leg_events, AtomicPersistSize::default());
                    let (completed, begun) = replayer.ops_at(case.point);
                    let p2 = rng.gen_below(leg_events.len() as u64 + 1) as usize;
                    let case2 = frags2.draw(model, p2, &mut rng, cfg.torn);
                    let img2 = &mut leg_image;
                    if eval_second(target, &frags2, img, img2, model, &case2, completed, begun)
                        .is_err()
                    {
                        failures += 1;
                        if first_failure.is_none() {
                            // Shrink the recovery crash with the first crash
                            // fixed.
                            let shrunk2 = frags2.shrink(model, &case2, |c2| {
                                eval_second(
                                    target, &frags2, img, img2, model, c2, completed, begun,
                                )
                                .is_err()
                            });
                            let message = eval_second(
                                target, &frags2, img, img2, model, &shrunk2, completed, begun,
                            )
                            .expect_err("shrunk recovery crash still fails");
                            first_failure = Some(FailureReport {
                                injection: i,
                                crash_point: case.point,
                                second_crash_point: Some(shrunk2.point),
                                during_recovery: true,
                                dropped_lines: frags2.dropped_lines(model, &shrunk2),
                                message,
                            });
                            tel.shrunk(first_failure.as_ref().expect("just set"));
                        }
                    }
                }
                Ok((false, _)) => {}
            }
            tel.injected();
        }
        tel.spill();

        if obsv::enabled() {
            // Shard totals sum to the same cell totals for any sharding, so
            // these counters are worker-count independent; per-shard
            // distributions would not be, and are deliberately not recorded.
            obsv::counter_add("pfi.injections", hi.min(cfg.injections).saturating_sub(lo));
            obsv::counter_add("pfi.failures", failures);
            obsv::counter_add("pfi.recovery_crashes", recovery_crashes);
        }
        ShardReport {
            injections: hi.min(cfg.injections).saturating_sub(lo),
            recovery_crashes,
            failures,
            first_failure,
        }
    }

    /// Merges shard results covering the full `0..injections` range into
    /// the cell report. The first failure is the one with the lowest
    /// injection index, matching a serial run.
    pub fn merge(&self, shards: &[ShardReport]) -> CellReport {
        let mut recovery_crashes = 0u64;
        let mut failures = 0u64;
        let mut first_failure: Option<FailureReport> = None;
        for s in shards {
            recovery_crashes += s.recovery_crashes;
            failures += s.failures;
            if let Some(f) = &s.first_failure {
                if first_failure.as_ref().is_none_or(|g| f.injection < g.injection) {
                    first_failure = Some(f.clone());
                }
            }
        }
        CellReport {
            structure: self.cell.structure.name(),
            model: self.cell.model.name(),
            events: self.rec.events.len(),
            injections: self.cfg.injections,
            recovery_crashes,
            failures,
            first_failure,
        }
    }
}

/// Splits `0..total` into `shards` contiguous ranges (the last may be
/// shorter; empty ranges are omitted).
pub fn shard_ranges(total: u64, shards: u64) -> Vec<(u64, u64)> {
    let shards = shards.max(1);
    let per = total.div_ceil(shards).max(1);
    (0..shards)
        .map(|s| (s * per, ((s + 1) * per).min(total)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Fuzzes one cell serially. Deterministic for a fixed `cfg` and `cell`,
/// and identical to any sharded run of the same plan.
pub fn run_cell(cfg: &FuzzConfig, cell: FuzzCell) -> CellReport {
    let plan = CellPlan::new(cfg, cell);
    let shard = plan.run_shard(0, plan.injections());
    plan.merge(&[shard])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg_ops: u64, injections: u64, structure: Structure, model: Model) -> CellReport {
        let cfg = FuzzConfig { ops: cfg_ops, injections, ..FuzzConfig::default() };
        run_cell(&cfg, FuzzCell { structure, model })
    }

    #[test]
    fn stock_cwl_survives_epoch_smoke() {
        let r = quick(8, 120, Structure::Cwl, Model::Epoch);
        assert!(r.passed(), "{:?}", r.first_failure);
        assert_eq!(r.recovery_crashes, 0, "queue recovery is read-only");
    }

    #[test]
    fn elided_cwl_is_caught_under_epoch_and_survives_strict() {
        let r = quick(8, 120, Structure::CwlElided, Model::Epoch);
        assert!(!r.passed(), "elided barrier must be caught");
        let f = r.first_failure.expect("failure is reported");
        assert!(!f.dropped_lines.is_empty());
        let r = quick(8, 120, Structure::CwlElided, Model::Strict);
        assert!(r.passed(), "global store order protects the elided queue: {:?}", r.first_failure);
    }

    #[test]
    fn txn_exercises_multi_crash() {
        let r = quick(6, 120, Structure::Txn, Model::Epoch);
        assert!(r.passed(), "{:?}", r.first_failure);
        assert!(r.recovery_crashes > 0, "rollback scripts must be re-crashed");
        // The delta-aware skip must drop the no-op legs (crash images whose
        // durable log header is already idle) without losing the write-ful
        // ones.
        assert!(
            r.recovery_crashes < r.injections,
            "no-op recovery scripts must not be re-crashed ({} of {})",
            r.recovery_crashes,
            r.injections
        );
    }

    #[test]
    fn cells_are_deterministic() {
        let a = quick(8, 60, Structure::Kv, Model::Strand);
        let b = quick(8, 60, Structure::Kv, Model::Strand);
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_runs_match_serial() {
        let cfg = FuzzConfig { ops: 8, injections: 90, torn: true, ..FuzzConfig::default() };
        // A passing and a failing cell, so merge covers both paths.
        for structure in [Structure::Txn, Structure::CwlElided] {
            let cell = FuzzCell { structure, model: Model::Epoch };
            let plan = CellPlan::new(&cfg, cell);
            let serial = plan.merge(&[plan.run_shard(0, plan.injections())]);
            for shards in [2u64, 7] {
                let parts: Vec<ShardReport> = shard_ranges(plan.injections(), shards)
                    .into_iter()
                    .map(|(lo, hi)| plan.run_shard(lo, hi))
                    .collect();
                assert_eq!(plan.merge(&parts), serial, "{structure:?} x{shards}");
            }
        }
    }

    #[test]
    fn shard_ranges_partition_the_range() {
        assert_eq!(shard_ranges(10, 3), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(shard_ranges(2, 5), vec![(0, 1), (1, 2)]);
        assert_eq!(shard_ranges(0, 4), vec![]);
    }
}
