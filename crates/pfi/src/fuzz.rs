//! The per-cell crash-fuzz loop.
//!
//! A *cell* is one (structure × model) pair. [`run_cell`] records the
//! target's workload once, then injects `injections` crashes: even
//! injection indices sweep crash points systematically, odd ones draw
//! them (and the survivor sets) from a small deterministic RNG seeded
//! from `(seed, structure, model)` — so a cell's outcome is identical
//! regardless of how many workers run the matrix. The first failure in a
//! cell is shrunk to the earliest crash point and smallest dropped set
//! that still fail; later failures are only counted.
//!
//! When the target's recovery writes (the undo log), its recovery script
//! is replayed through a fresh shadow and a *second* crash is injected
//! into it (multi-crash), checking that recovery is itself
//! crash-consistent.

use crate::inject::{CrashCase, FragmentSet};
use crate::shadow::{Recording, ShadowPmem};
use crate::targets::{CwlTarget, FuzzTarget, KvTarget, TwoLockTarget, TxnTarget};
use mem_trace::rng::SmallRng;
use persist_mem::{AtomicPersistSize, MemoryImage, PmemBackend};
use persistency::Model;
use pstruct::txn::RecoveryStep;

/// Crash-fuzz parameters, shared by every cell of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Logical operations in the recorded workload.
    pub ops: u64,
    /// Crashes injected per cell.
    pub injections: u64,
    /// Base seed; mixed with the cell identity per cell.
    pub seed: u64,
    /// Inject a second crash into write-ful recovery scripts.
    pub multi_crash: bool,
    /// Allow torn (sub-fragment) persists at drop boundaries.
    pub torn: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { ops: 24, injections: 1000, seed: 0, multi_crash: true, torn: false }
    }
}

/// The structures the fuzzer knows how to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structure {
    /// Copy While Locked, full barriers.
    Cwl,
    /// Copy While Locked with the entry-persist fence elided — the
    /// known-buggy specimen the injector must catch.
    CwlElided,
    /// Two-Lock Concurrent.
    TwoLock,
    /// Persistent KV table.
    Kv,
    /// Undo-log transactions (write-ful recovery: the multi-crash target).
    Txn,
}

impl Structure {
    /// Every structure, stock ones first.
    pub const ALL: [Structure; 5] =
        [Structure::Cwl, Structure::TwoLock, Structure::Kv, Structure::Txn, Structure::CwlElided];

    /// The structures expected to survive fuzzing.
    pub const STOCK: [Structure; 4] =
        [Structure::Cwl, Structure::TwoLock, Structure::Kv, Structure::Txn];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            Structure::Cwl => "cwl",
            Structure::CwlElided => "cwl-elided",
            Structure::TwoLock => "2lc",
            Structure::Kv => "kv",
            Structure::Txn => "txn",
        }
    }

    /// Parses a report name back into a structure.
    pub fn from_name(name: &str) -> Option<Structure> {
        Structure::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Builds the target driving this structure.
    pub fn target(self) -> Box<dyn FuzzTarget> {
        match self {
            Structure::Cwl => Box::new(CwlTarget::new()),
            Structure::CwlElided => Box::new(CwlTarget::elided()),
            Structure::TwoLock => Box::new(TwoLockTarget::new()),
            Structure::Kv => Box::new(KvTarget::new()),
            Structure::Txn => Box::new(TxnTarget::new()),
        }
    }
}

/// One (structure × model) fuzz cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzCell {
    /// The structure under test.
    pub structure: Structure,
    /// The persistency model governing what crashes may drop.
    pub model: Model,
}

/// The first failure of a cell, shrunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureReport {
    /// Injection index that first failed.
    pub injection: u64,
    /// Crash point (events executed) after shrinking.
    pub crash_point: usize,
    /// For multi-crash failures: the crash point within recovery.
    pub second_crash_point: Option<usize>,
    /// Whether the failure needed a crash during recovery.
    pub during_recovery: bool,
    /// Cache lines dropped or torn by the (shrunk) failing crash.
    pub dropped_lines: Vec<u64>,
    /// What the recovery or the checker rejected.
    pub message: String,
}

/// Outcome of one fuzz cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellReport {
    /// Structure name.
    pub structure: &'static str,
    /// Model name.
    pub model: &'static str,
    /// Events in the recorded workload.
    pub events: usize,
    /// Crashes injected.
    pub injections: u64,
    /// Crashes additionally injected into recovery (multi-crash).
    pub recovery_crashes: u64,
    /// Injections whose recovery or check failed.
    pub failures: u64,
    /// The first failure, shrunk to a minimal reproducer.
    pub first_failure: Option<FailureReport>,
}

impl CellReport {
    /// `true` if the cell survived every injection.
    pub fn passed(&self) -> bool {
        self.failures == 0
    }
}

/// Mixes the base seed with the cell identity (FNV-1a over the names), so
/// each cell owns an independent, worker-count-independent stream.
fn cell_seed(seed: u64, cell: FuzzCell) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in cell.structure.name().bytes().chain([0u8]).chain(cell.model.name().bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Applies a recovery script's writes (barriers are ordering-only).
fn apply_script(mut image: MemoryImage, script: &[RecoveryStep]) -> MemoryImage {
    for step in script {
        if let RecoveryStep::Write { addr, value } = step {
            image.write_u64(*addr, *value).expect("recovery write in range");
        }
    }
    image
}

/// Replays a recovery script through a fresh shadow over `base`, giving
/// the event stream a second crash can be injected into.
fn record_recovery(base: &MemoryImage, script: &[RecoveryStep]) -> Recording {
    let mut s = ShadowPmem::with_base(base.clone());
    for step in script {
        match step {
            RecoveryStep::Write { addr, value } => {
                s.store_u64(*addr, *value);
                s.flush(*addr, 8);
            }
            RecoveryStep::Barrier => s.fence(),
        }
    }
    s.into_recording()
}

/// Runs first-crash recovery + checks. On success returns the pre-recovery
/// image and the script (the inputs a second crash needs).
fn eval_first(
    target: &dyn FuzzTarget,
    rec: &Recording,
    frags: &FragmentSet,
    model: Model,
    case: &CrashCase,
) -> Result<(MemoryImage, Vec<RecoveryStep>), String> {
    let img = frags.materialize(&rec.base, model, case);
    let (completed, begun) = rec.ops_at(case.point);
    let script = target
        .recovery_script(&img)
        .map_err(|e| format!("recovery rejected the image: {e}"))?;
    let recovered = apply_script(img.clone(), &script);
    target.check(&recovered, completed, begun)?;
    Ok((img, script))
}

/// Runs the second-crash leg: materialize the mid-recovery image, run
/// recovery *again* on it, check against the original op history.
fn eval_second(
    target: &dyn FuzzTarget,
    frags2: &FragmentSet,
    base: &MemoryImage,
    model: Model,
    case2: &CrashCase,
    completed: u64,
    begun: u64,
) -> Result<(), String> {
    let img2 = frags2.materialize(base, model, case2);
    let script2 = target
        .recovery_script(&img2)
        .map_err(|e| format!("re-recovery rejected the image: {e}"))?;
    let recovered = apply_script(img2, &script2);
    target.check(&recovered, completed, begun)
}

/// Fuzzes one cell. Deterministic for a fixed `cfg` and `cell`.
pub fn run_cell(cfg: &FuzzConfig, cell: FuzzCell) -> CellReport {
    let target = cell.structure.target();
    let mut shadow = ShadowPmem::new();
    target.run(&mut shadow, cfg.ops);
    let rec = shadow.into_recording();
    let frags = FragmentSet::build(&rec, AtomicPersistSize::default());
    let model = cell.model;
    let points = rec.events.len() as u64 + 1;

    let mut rng = SmallRng::seed_from_u64(cell_seed(cfg.seed, cell));
    let mut failures = 0u64;
    let mut recovery_crashes = 0u64;
    let mut first_failure: Option<FailureReport> = None;

    for i in 0..cfg.injections {
        // Even injections sweep crash points systematically; odd ones are
        // random, as are all survivor draws.
        let point = if i % 2 == 0 {
            ((i / 2) % points) as usize
        } else {
            rng.gen_below(points) as usize
        };
        let case = frags.draw(model, point, &mut rng, cfg.torn);

        match eval_first(target.as_ref(), &rec, &frags, model, &case) {
            Err(_) => {
                failures += 1;
                if first_failure.is_none() {
                    let shrunk = frags.shrink(model, &case, |c| {
                        eval_first(target.as_ref(), &rec, &frags, model, c).is_err()
                    });
                    let message = eval_first(target.as_ref(), &rec, &frags, model, &shrunk)
                        .expect_err("shrunk case still fails");
                    first_failure = Some(FailureReport {
                        injection: i,
                        crash_point: shrunk.point,
                        second_crash_point: None,
                        during_recovery: false,
                        dropped_lines: frags.dropped_lines(model, &shrunk),
                        message,
                    });
                }
            }
            Ok((img, script)) if cfg.multi_crash && !script.is_empty() => {
                recovery_crashes += 1;
                let rec2 = record_recovery(&img, &script);
                let frags2 = FragmentSet::build(&rec2, AtomicPersistSize::default());
                let (completed, begun) = rec.ops_at(case.point);
                let p2 = rng.gen_below(rec2.events.len() as u64 + 1) as usize;
                let case2 = frags2.draw(model, p2, &mut rng, cfg.torn);
                if let Err(_) =
                    eval_second(target.as_ref(), &frags2, &img, model, &case2, completed, begun)
                {
                    failures += 1;
                    if first_failure.is_none() {
                        // Shrink the recovery crash with the first crash fixed.
                        let shrunk2 = frags2.shrink(model, &case2, |c2| {
                            eval_second(
                                target.as_ref(),
                                &frags2,
                                &img,
                                model,
                                c2,
                                completed,
                                begun,
                            )
                            .is_err()
                        });
                        let message = eval_second(
                            target.as_ref(),
                            &frags2,
                            &img,
                            model,
                            &shrunk2,
                            completed,
                            begun,
                        )
                        .expect_err("shrunk recovery crash still fails");
                        first_failure = Some(FailureReport {
                            injection: i,
                            crash_point: case.point,
                            second_crash_point: Some(shrunk2.point),
                            during_recovery: true,
                            dropped_lines: frags2.dropped_lines(model, &shrunk2),
                            message,
                        });
                    }
                }
            }
            Ok(_) => {}
        }
    }

    CellReport {
        structure: cell.structure.name(),
        model: model.name(),
        events: rec.events.len(),
        injections: cfg.injections,
        recovery_crashes,
        failures,
        first_failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg_ops: u64, injections: u64, structure: Structure, model: Model) -> CellReport {
        let cfg = FuzzConfig { ops: cfg_ops, injections, ..FuzzConfig::default() };
        run_cell(&cfg, FuzzCell { structure, model })
    }

    #[test]
    fn stock_cwl_survives_epoch_smoke() {
        let r = quick(8, 120, Structure::Cwl, Model::Epoch);
        assert!(r.passed(), "{:?}", r.first_failure);
        assert_eq!(r.recovery_crashes, 0, "queue recovery is read-only");
    }

    #[test]
    fn elided_cwl_is_caught_under_epoch_and_survives_strict() {
        let r = quick(8, 120, Structure::CwlElided, Model::Epoch);
        assert!(!r.passed(), "elided barrier must be caught");
        let f = r.first_failure.expect("failure is reported");
        assert!(!f.dropped_lines.is_empty());
        let r = quick(8, 120, Structure::CwlElided, Model::Strict);
        assert!(r.passed(), "global store order protects the elided queue: {:?}", r.first_failure);
    }

    #[test]
    fn txn_exercises_multi_crash() {
        let r = quick(6, 120, Structure::Txn, Model::Epoch);
        assert!(r.passed(), "{:?}", r.first_failure);
        assert!(r.recovery_crashes > 0, "rollback scripts must be re-crashed");
    }

    #[test]
    fn cells_are_deterministic() {
        let a = quick(8, 60, Structure::Kv, Model::Strand);
        let b = quick(8, 60, Structure::Kv, Model::Strand);
        assert_eq!(a, b);
    }
}
