//! Persistent fault injection (`pfi`): native crash testing for the
//! recovery protocols built on [`persist_mem::PmemBackend`].
//!
//! The trace-driven analyses elsewhere in this workspace *measure* what a
//! persistency model allows; this crate *exploits* it. A workload runs
//! against a [`ShadowPmem`] that records every store, flush, fence and
//! strand barrier. The injector then picks crash points (systematically
//! and at random), computes which recorded writes the chosen persistency
//! model lets the NVRAM lose, materializes each post-crash
//! [`persist_mem::MemoryImage`], runs the structure's *real* recovery
//! code, and checks its invariants plus linearizable-prefix durability
//! against the pre-crash operation history. Failures are shrunk to a
//! minimal crash point and dropped-line set; re-crashing during recovery
//! (multi-crash) is supported for structures whose recovery itself writes.
//!
//! Modules:
//!
//! - [`shadow`] — the recording backend and [`Recording`];
//! - [`inject`] — fragments, per-model durability/drop rules, crash-case
//!   sampling, legality, materialization and shrinking;
//! - [`replay`] — the delta replayer: checkpoint-ladder materialization
//!   in O(touched lines) per injection over a pooled scratch image;
//! - [`targets`] — the fuzz targets (queues, KV store, transaction log),
//!   including the deliberately broken barrier-elided queue;
//! - [`fuzz`] — the per-cell (structure × model) fuzz loop;
//! - [`report`] — JSON rendering of fuzz results.

#![warn(missing_docs)]

pub mod fuzz;
pub mod inject;
pub mod replay;
pub mod report;
pub mod shadow;
pub mod targets;

pub use fuzz::{CellPlan, CellReport, FailureReport, FuzzCell, FuzzConfig, ShardReport, Structure};
pub use inject::{CrashCase, Fragment, FragmentSet, Survivor};
pub use replay::Replayer;
pub use shadow::{Recording, ShadowEvent, ShadowPmem};
pub use targets::FuzzTarget;
