//! The shadow-NVRAM backend: records every persistence event.
//!
//! [`ShadowPmem`] implements [`PmemBackend`] by keeping two images — the
//! *base* (contents guaranteed durable before the run started) and the
//! *cache* (what loads observe, i.e. every store applied) — plus an ordered
//! log of [`ShadowEvent`]s. Nothing is dropped while the workload runs;
//! crash injection happens afterwards, on the [`Recording`], by choosing
//! which logged stores survive (see [`crate::inject`]).
//!
//! Workloads bracket logical operations with [`ShadowPmem::op_begin`] /
//! [`ShadowPmem::op_end`] so the injector can compute, for any crash
//! point, how many operations had completed and how many were in flight —
//! the inputs to the linearizable-prefix durability check.

use persist_mem::{MemAddr, MemoryImage, PmemBackend};

/// One logged persistence event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShadowEvent {
    /// A store of `data` at `addr` (persistent space).
    Store {
        /// Destination address.
        addr: MemAddr,
        /// Bytes written.
        data: Vec<u8>,
    },
    /// A cache-line flush request covering `[addr, addr + len)`.
    Flush {
        /// Start of the flushed range.
        addr: MemAddr,
        /// Length in bytes.
        len: u64,
    },
    /// A persist fence.
    Fence,
    /// A strand barrier (`NewStrand`).
    Strand,
    /// A logical operation with the given id began.
    OpBegin(u64),
    /// A logical operation with the given id completed.
    OpEnd(u64),
}

/// A [`PmemBackend`] that records instead of forgetting.
#[derive(Debug, Clone, Default)]
pub struct ShadowPmem {
    base: MemoryImage,
    cache: MemoryImage,
    events: Vec<ShadowEvent>,
}

impl ShadowPmem {
    /// A shadow over all-zero persistent memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shadow whose durable floor is `image` — used to re-crash
    /// *recovery* itself, which starts from a post-crash image.
    pub fn with_base(image: MemoryImage) -> Self {
        ShadowPmem { cache: image.clone(), base: image, events: Vec::new() }
    }

    /// Rebases a shadow for reuse: the durable floor becomes a copy of
    /// `image` and the event log is cleared, keeping every allocation.
    /// Loops that re-record per iteration (the crash-fuzz multi-crash leg)
    /// use one shadow instead of building one per [`ShadowPmem::with_base`].
    pub fn reset_with(&mut self, image: &MemoryImage) {
        self.base.clone_from(image);
        self.cache.clone_from(image);
        self.events.clear();
    }

    /// The events recorded so far, in execution order.
    pub fn events(&self) -> &[ShadowEvent] {
        &self.events
    }

    /// Marks the start of logical operation `id`.
    pub fn op_begin(&mut self, id: u64) {
        self.events.push(ShadowEvent::OpBegin(id));
    }

    /// Marks the completion of logical operation `id`.
    pub fn op_end(&mut self, id: u64) {
        self.events.push(ShadowEvent::OpEnd(id));
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finishes recording.
    pub fn into_recording(self) -> Recording {
        Recording { base: self.base, events: self.events, final_image: self.cache }
    }
}

impl PmemBackend for ShadowPmem {
    fn load(&mut self, addr: MemAddr, buf: &mut [u8]) {
        self.cache.read(addr, buf).expect("shadow load in range");
    }

    fn store(&mut self, addr: MemAddr, data: &[u8]) {
        assert!(
            addr.is_persistent(),
            "shadow backend tracks the persistent space; keep volatile state in plain variables"
        );
        self.cache.write(addr, data).expect("shadow store in range");
        self.events.push(ShadowEvent::Store { addr, data: data.to_vec() });
    }

    fn flush(&mut self, addr: MemAddr, len: u64) {
        self.events.push(ShadowEvent::Flush { addr, len });
    }

    fn fence(&mut self) {
        self.events.push(ShadowEvent::Fence);
    }

    fn strand(&mut self) {
        self.events.push(ShadowEvent::Strand);
    }
}

/// A completed shadow run: durable floor, event log, crash-free outcome.
#[derive(Debug, Clone)]
pub struct Recording {
    /// Contents durable before the run started.
    pub base: MemoryImage,
    /// Every persistence event, in execution order.
    pub events: Vec<ShadowEvent>,
    /// The image a crash-free run leaves behind (all stores applied).
    pub final_image: MemoryImage,
}

impl Recording {
    /// Operations completed (`OpEnd` seen) before event index `point`, and
    /// operations begun. `begun - completed` operations are in flight at a
    /// crash at `point`.
    pub fn ops_at(&self, point: usize) -> (u64, u64) {
        let mut completed = 0;
        let mut begun = 0;
        for e in &self.events[..point.min(self.events.len())] {
            match e {
                ShadowEvent::OpBegin(_) => begun += 1,
                ShadowEvent::OpEnd(_) => completed += 1,
                _ => {}
            }
        }
        (completed, begun)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_replays_stores() {
        let mut s = ShadowPmem::new();
        let a = MemAddr::persistent(64);
        s.op_begin(0);
        s.store_u64(a, 7);
        s.persist(a, 8);
        s.op_end(0);
        assert_eq!(s.load_u64(a), 7);
        let rec = s.into_recording();
        assert_eq!(rec.events.len(), 5); // begin, store, flush, fence, end
        assert_eq!(rec.final_image.read_u64(a).unwrap(), 7);
        assert_eq!(rec.base.read_u64(a).unwrap(), 0);
        assert_eq!(rec.ops_at(5), (1, 1));
        assert_eq!(rec.ops_at(2), (0, 1));
    }

    #[test]
    fn with_base_starts_from_image() {
        let mut img = MemoryImage::new();
        img.write_u64(MemAddr::persistent(0), 3).unwrap();
        let mut s = ShadowPmem::with_base(img);
        assert_eq!(s.load_u64(MemAddr::persistent(0)), 3);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "persistent space")]
    fn volatile_stores_are_rejected() {
        let mut s = ShadowPmem::new();
        s.store_u64(MemAddr::volatile(0), 1);
    }
}
