//! Model-aware crash injection over a [`Recording`].
//!
//! A recorded store is split into per-cache-line [`Fragment`]s. At a crash
//! point `p` (an index into the event log: events `0..p` executed), every
//! fragment is in one of three states:
//!
//! - **unwritten** — its store lies at or after `p`;
//! - **durable** — the model's durability rule was satisfied before `p`
//!   (see below); the fragment is guaranteed to survive;
//! - **pending** — written but not guaranteed; the crash may keep or drop
//!   it, subject to the model's ordering constraints.
//!
//! Durability rules: under epoch, BPFS and strand persistency a fragment
//! is durable once a *flush* covering its line (issued after the store)
//! has been followed by a *fence* — for strand, a fence on the same strand
//! as the flush. Under strict and strict-RMO persistency the ISA has no
//! flush; we read the backend's fence as the model's sync point, so a
//! fragment is durable once any fence follows its store.
//!
//! Drop rules for pending fragments (what [`FragmentSet::draw`] samples
//! and [`FragmentSet::is_legal`] admits):
//!
//! - **strict** — persists happen in store order, so the survivors are a
//!   prefix of the pending fragments in sequence order.
//! - **strict-rmo** — same-thread store order is only enforced across
//!   memory barriers; absent those, per-line order survives (strong
//!   persist atomicity) but lines are mutually unordered: an independent
//!   sequence-prefix per cache line.
//! - **epoch** — fences delimit epochs; persists of epoch `e` all happen
//!   before any persist of epoch `e' > e`. Survivors are epoch-downward
//!   closed: everything below a boundary epoch survives, an arbitrary
//!   subset of the boundary epoch survives, everything above is dropped.
//! - **bpfs** — epoch ordering is enforced per cache line (the BPFS
//!   commit protocol orders epochs through the line it touches): modeled
//!   as per-line prefixes, as strict-rmo.
//! - **strand** — the epoch rule applies within each strand
//!   independently; fragments on different strands are unordered.
//!
//! With torn persists enabled, fragments at the drop boundary (the last
//! survivor under a prefix rule; boundary-epoch members under an epoch
//! rule) may additionally persist only a subset of their
//! [`AtomicPersistSize`] units — the same granularity knob the `nvram`
//! wear model sweeps. Fragments *below* the boundary cannot tear: the
//! fence that ordered them ahead of surviving persists guaranteed all
//! their units.

use crate::shadow::{Recording, ShadowEvent};
use mem_trace::rng::SmallRng;
use persist_mem::{AtomicPersistSize, MemAddr, MemoryImage, CACHE_LINE_BYTES};
use persistency::Model;

/// A store restricted to one cache line.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// Index of the originating `Store` event.
    pub event: usize,
    /// Fragment start address.
    pub addr: MemAddr,
    /// Fragment bytes.
    pub data: Vec<u8>,
    /// Cache line (persistent offset / line size).
    pub line: u64,
    /// Global fence count at the store (epoch id).
    pub epoch: u32,
    /// Strand id at the store.
    pub strand: u32,
    /// Fence count within the strand at the store.
    pub strand_epoch: u32,
    /// First event index whose execution makes the fragment durable under
    /// a fence-only rule (strict, strict-rmo).
    durable_fence: Option<usize>,
    /// Same under the flush-then-fence rule (epoch, bpfs).
    durable_flush_fence: Option<usize>,
    /// Same with the fence required on the flush's strand (strand).
    durable_strand: Option<usize>,
}

impl Fragment {
    /// The event index after which this fragment is guaranteed durable
    /// under `model`, if any.
    pub fn durable_at(&self, model: Model) -> Option<usize> {
        match model {
            Model::Strict | Model::StrictRmo => self.durable_fence,
            Model::Epoch | Model::Bpfs => self.durable_flush_fence,
            Model::Strand => self.durable_strand,
            _ => self.durable_flush_fence,
        }
    }

    /// Number of atomic-persist units the fragment spans.
    pub fn units(&self, unit: u64) -> u32 {
        self.data.len().div_ceil(unit as usize) as u32
    }
}

/// A surviving pending fragment, possibly torn to a subset of its units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Survivor {
    /// Index into [`FragmentSet::fragments`].
    pub frag: usize,
    /// Bit `i` set = unit `i` (fragment-relative) persisted.
    pub unit_mask: u64,
}

/// A concrete injected crash: how far execution got, and which pending
/// fragments the NVRAM kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashCase {
    /// Events executed before the crash.
    pub point: usize,
    /// Kept pending fragments (everything durable survives implicitly;
    /// every pending fragment absent here is dropped).
    pub survivors: Vec<Survivor>,
}

/// The per-line fragments of a recording, with durability metadata.
#[derive(Debug, Clone)]
pub struct FragmentSet {
    frags: Vec<Fragment>,
    events_len: usize,
    unit: u64,
}

impl FragmentSet {
    /// Splits every store of `rec` into line fragments and computes the
    /// per-model durability points. `unit` is the atomic persist size for
    /// torn-write modeling.
    pub fn build(rec: &Recording, unit: AtomicPersistSize) -> Self {
        Self::from_events(&rec.events, unit)
    }

    /// [`FragmentSet::build`] over a bare event log — the base and final
    /// images play no part in fragment construction, so callers holding a
    /// live [`crate::shadow::ShadowPmem`] can build without finishing it
    /// into a [`Recording`].
    pub fn from_events(events: &[ShadowEvent], unit: AtomicPersistSize) -> Self {
        let line_sz = CACHE_LINE_BYTES;
        // Tag every event with (epoch, strand, strand_epoch).
        let mut tags = Vec::with_capacity(events.len());
        let (mut epoch, mut strand, mut strand_epoch) = (0u32, 0u32, 0u32);
        for e in events {
            tags.push((epoch, strand, strand_epoch));
            match e {
                ShadowEvent::Fence => {
                    epoch += 1;
                    strand_epoch += 1;
                }
                ShadowEvent::Strand => {
                    strand += 1;
                    strand_epoch = 0;
                }
                _ => {}
            }
        }

        let mut frags = Vec::new();
        for (idx, e) in events.iter().enumerate() {
            let ShadowEvent::Store { addr, data } = e else { continue };
            let (epoch, strand, strand_epoch) = tags[idx];
            let mut off = 0usize;
            while off < data.len() {
                let a = addr.add(off as u64);
                let line = a.offset() / line_sz;
                let line_end = (line + 1) * line_sz;
                let take = ((line_end - a.offset()) as usize).min(data.len() - off);
                frags.push(Fragment {
                    event: idx,
                    addr: a,
                    data: data[off..off + take].to_vec(),
                    line,
                    epoch,
                    strand,
                    strand_epoch,
                    durable_fence: None,
                    durable_flush_fence: None,
                    durable_strand: None,
                });
                off += take;
            }
        }

        // Durability scans (event counts are small; clarity over big-O).
        for f in &mut frags {
            let mut covered: Option<u32> = None; // strand of the last covering flush
            for (i, e) in events.iter().enumerate().skip(f.event + 1) {
                match e {
                    ShadowEvent::Flush { addr, len } => {
                        let lo = addr.offset() / line_sz;
                        let hi = (addr.offset() + (*len).max(1) - 1) / line_sz;
                        if (lo..=hi).contains(&f.line) {
                            covered = Some(tags[i].1);
                        }
                    }
                    ShadowEvent::Fence => {
                        if f.durable_fence.is_none() {
                            f.durable_fence = Some(i);
                        }
                        if let Some(fl_strand) = covered {
                            if f.durable_flush_fence.is_none() {
                                f.durable_flush_fence = Some(i);
                            }
                            if f.durable_strand.is_none() && tags[i].1 == fl_strand {
                                f.durable_strand = Some(i);
                            }
                        }
                    }
                    _ => {}
                }
                if f.durable_fence.is_some()
                    && f.durable_flush_fence.is_some()
                    && f.durable_strand.is_some()
                {
                    break;
                }
            }
        }

        FragmentSet { frags, events_len: events.len(), unit: unit.bytes() }
    }

    /// All fragments, in store (sequence) order.
    pub fn fragments(&self) -> &[Fragment] {
        &self.frags
    }

    /// Number of events in the underlying recording (crash points range
    /// over `0..=events_len`).
    pub fn events_len(&self) -> usize {
        self.events_len
    }

    /// The atomic persist unit used for torn-write masks.
    pub fn unit(&self) -> u64 {
        self.unit
    }

    fn is_durable(&self, i: usize, model: Model, point: usize) -> bool {
        self.frags[i].durable_at(model).is_some_and(|e| e < point)
    }

    /// Indices of fragments pending (written, not durable) at `point`.
    pub fn pending(&self, model: Model, point: usize) -> Vec<usize> {
        (0..self.frags.len())
            .filter(|&i| self.frags[i].event < point && !self.is_durable(i, model, point))
            .collect()
    }

    fn full_mask(&self, i: usize) -> u64 {
        let n = self.frags[i].units(self.unit);
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    /// Samples a crash case at `point`: a legal survivor subset of the
    /// pending fragments under `model`, optionally with torn boundary
    /// fragments.
    pub fn draw(&self, model: Model, point: usize, rng: &mut SmallRng, torn: bool) -> CrashCase {
        let pending = self.pending(model, point);
        let mut survivors = Vec::new();
        let keep_full = |survivors: &mut Vec<Survivor>, i: usize| {
            survivors.push(Survivor { frag: i, unit_mask: self.full_mask(i) });
        };
        // Keeps a boundary fragment with a random (possibly partial) mask.
        let keep_boundary = |survivors: &mut Vec<Survivor>, i: usize, rng: &mut SmallRng| {
            let full = self.full_mask(i);
            let mask = if torn && rng.gen_below(4) == 0 { rng.next_u64() & full } else { full };
            if mask != 0 {
                survivors.push(Survivor { frag: i, unit_mask: mask });
            }
        };

        match model {
            Model::Strict => {
                let k = rng.gen_below(pending.len() as u64 + 1) as usize;
                for (n, &i) in pending.iter().take(k).enumerate() {
                    if n + 1 == k {
                        keep_boundary(&mut survivors, i, rng);
                    } else {
                        keep_full(&mut survivors, i);
                    }
                }
            }
            Model::StrictRmo | Model::Bpfs => {
                // Independent prefix per line.
                let mut lines: Vec<u64> = pending.iter().map(|&i| self.frags[i].line).collect();
                lines.sort_unstable();
                lines.dedup();
                for line in lines {
                    let of_line: Vec<usize> = pending
                        .iter()
                        .copied()
                        .filter(|&i| self.frags[i].line == line)
                        .collect();
                    let k = rng.gen_below(of_line.len() as u64 + 1) as usize;
                    for (n, &i) in of_line.iter().take(k).enumerate() {
                        if n + 1 == k {
                            keep_boundary(&mut survivors, i, rng);
                        } else {
                            keep_full(&mut survivors, i);
                        }
                    }
                }
            }
            Model::Epoch => {
                self.draw_epochwise(&pending, |i| self.frags[i].epoch, rng, &mut survivors, torn);
            }
            Model::Strand => {
                let mut strands: Vec<u32> = pending.iter().map(|&i| self.frags[i].strand).collect();
                strands.sort_unstable();
                strands.dedup();
                for s in strands {
                    let of_strand: Vec<usize> = pending
                        .iter()
                        .copied()
                        .filter(|&i| self.frags[i].strand == s)
                        .collect();
                    self.draw_epochwise(
                        &of_strand,
                        |i| self.frags[i].strand_epoch,
                        rng,
                        &mut survivors,
                        torn,
                    );
                }
            }
            _ => {
                self.draw_epochwise(&pending, |i| self.frags[i].epoch, rng, &mut survivors, torn);
            }
        }
        survivors.sort_unstable_by_key(|s| s.frag);
        CrashCase { point, survivors }
    }

    /// Epoch-downward-closed draw over `pending` with epochs given by
    /// `epoch_of`: pick a boundary epoch, keep everything below it, flip a
    /// coin (and possibly tear) inside it, drop everything above.
    fn draw_epochwise(
        &self,
        pending: &[usize],
        epoch_of: impl Fn(usize) -> u32,
        rng: &mut SmallRng,
        survivors: &mut Vec<Survivor>,
        torn: bool,
    ) {
        if pending.is_empty() {
            return;
        }
        let mut epochs: Vec<u32> = pending.iter().map(|&i| epoch_of(i)).collect();
        epochs.sort_unstable();
        epochs.dedup();
        // One past the last = everything pending survives intact.
        let c = rng.gen_index(epochs.len() + 1);
        let boundary = epochs.get(c).copied();
        for &i in pending {
            let e = epoch_of(i);
            match boundary {
                None => survivors.push(Survivor { frag: i, unit_mask: self.full_mask(i) }),
                Some(b) if e < b => {
                    survivors.push(Survivor { frag: i, unit_mask: self.full_mask(i) })
                }
                Some(b) if e == b => {
                    if rng.gen_below(2) == 0 {
                        let full = self.full_mask(i);
                        let mask = if torn && rng.gen_below(4) == 0 {
                            rng.next_u64() & full
                        } else {
                            full
                        };
                        if mask != 0 {
                            survivors.push(Survivor { frag: i, unit_mask: mask });
                        }
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// Whether `case` is a crash the model could actually produce.
    pub fn is_legal(&self, model: Model, case: &CrashCase) -> bool {
        if case.point > self.events_len {
            return false;
        }
        let pending = self.pending(model, case.point);
        let kept: std::collections::BTreeMap<usize, u64> =
            case.survivors.iter().map(|s| (s.frag, s.unit_mask)).collect();
        if kept.len() != case.survivors.len() {
            return false; // duplicate fragment
        }
        for s in &case.survivors {
            if !pending.contains(&s.frag) {
                return false;
            }
            if s.unit_mask == 0 || s.unit_mask & !self.full_mask(s.frag) != 0 {
                return false;
            }
        }

        let prefix_ok = |group: &[usize]| -> bool {
            // Survivors must be a prefix; only the last kept may be torn.
            let mut seen_gap = false;
            let mut last_kept: Option<usize> = None;
            for &i in group {
                match kept.get(&i) {
                    Some(_) if seen_gap => return false,
                    Some(_) => last_kept = Some(i),
                    None => seen_gap = true,
                }
            }
            for &i in group {
                if let Some(&mask) = kept.get(&i) {
                    if mask != self.full_mask(i) && Some(i) != last_kept {
                        return false;
                    }
                }
            }
            true
        };
        let epoch_ok = |group: &[usize], epoch_of: &dyn Fn(usize) -> u32| -> bool {
            let Some(boundary) = group
                .iter()
                .filter(|i| kept.contains_key(i))
                .map(|&i| epoch_of(i))
                .max()
            else {
                return true; // nothing kept: dropping everything is legal
            };
            group.iter().all(|&i| {
                let e = epoch_of(i);
                match kept.get(&i) {
                    Some(&mask) if e < boundary => mask == self.full_mask(i),
                    None if e < boundary => false,
                    _ => true, // boundary epoch: any subset / mask; above: dropped
                }
            })
        };

        match model {
            Model::Strict => prefix_ok(&pending),
            Model::StrictRmo | Model::Bpfs => {
                let mut lines: Vec<u64> = pending.iter().map(|&i| self.frags[i].line).collect();
                lines.sort_unstable();
                lines.dedup();
                lines.iter().all(|&l| {
                    let group: Vec<usize> = pending
                        .iter()
                        .copied()
                        .filter(|&i| self.frags[i].line == l)
                        .collect();
                    prefix_ok(&group)
                })
            }
            Model::Epoch => epoch_ok(&pending, &|i| self.frags[i].epoch),
            Model::Strand => {
                let mut strands: Vec<u32> = pending.iter().map(|&i| self.frags[i].strand).collect();
                strands.sort_unstable();
                strands.dedup();
                strands.iter().all(|&s| {
                    let group: Vec<usize> = pending
                        .iter()
                        .copied()
                        .filter(|&i| self.frags[i].strand == s)
                        .collect();
                    epoch_ok(&group, &|i| self.frags[i].strand_epoch)
                })
            }
            _ => epoch_ok(&pending, &|i| self.frags[i].epoch),
        }
    }

    /// Builds the post-crash image for `case`: the base image plus every
    /// durable fragment plus the surviving units, applied in store order.
    pub fn materialize(&self, base: &MemoryImage, model: Model, case: &CrashCase) -> MemoryImage {
        let mut img = MemoryImage::new();
        self.materialize_into(&mut img, base, model, case);
        img
    }

    /// [`FragmentSet::materialize`] into a caller-owned image, reusing its
    /// allocations (`img` is overwritten, not merged into).
    pub fn materialize_into(
        &self,
        img: &mut MemoryImage,
        base: &MemoryImage,
        model: Model,
        case: &CrashCase,
    ) {
        let kept: std::collections::BTreeMap<usize, u64> =
            case.survivors.iter().map(|s| (s.frag, s.unit_mask)).collect();
        img.clone_from(base);
        for (i, f) in self.frags.iter().enumerate() {
            if f.event >= case.point {
                continue;
            }
            let mask = if self.is_durable(i, model, case.point) {
                self.full_mask(i)
            } else {
                match kept.get(&i) {
                    Some(&m) => m,
                    None => continue,
                }
            };
            let unit = self.unit as usize;
            for u in 0..f.units(self.unit) {
                if mask & (1 << u) == 0 {
                    continue;
                }
                let lo = u as usize * unit;
                let hi = (lo + unit).min(f.data.len());
                img.write(f.addr.add(lo as u64), &f.data[lo..hi])
                    .expect("materialized fragment in range");
            }
        }
    }

    /// Cache lines of pending fragments that `case` drops or tears.
    pub fn dropped_lines(&self, model: Model, case: &CrashCase) -> Vec<u64> {
        let kept: std::collections::BTreeMap<usize, u64> =
            case.survivors.iter().map(|s| (s.frag, s.unit_mask)).collect();
        let mut lines: Vec<u64> = self
            .pending(model, case.point)
            .into_iter()
            .filter(|i| kept.get(i) != Some(&self.full_mask(*i)))
            .map(|i| self.frags[i].line)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Shrinks a failing case: first to the earliest crash point that
    /// still fails, then to the fewest dropped fragments. `still_fails`
    /// is consulted only with cases that [`FragmentSet::is_legal`] admits.
    pub fn shrink(
        &self,
        model: Model,
        case: &CrashCase,
        mut still_fails: impl FnMut(&CrashCase) -> bool,
    ) -> CrashCase {
        let mut best = case.clone();
        // Phase 1: earliest failing crash point. Re-point the case by
        // keeping, of everything that materialized at the original point,
        // what is still pending at the earlier point.
        for p in 0..best.point {
            let survivors: Vec<Survivor> = self
                .pending(model, p)
                .into_iter()
                .filter_map(|i| {
                    if self.is_durable(i, model, best.point) {
                        return Some(Survivor { frag: i, unit_mask: self.full_mask(i) });
                    }
                    best.survivors.iter().find(|s| s.frag == i).copied()
                })
                .collect();
            let candidate = CrashCase { point: p, survivors };
            if self.is_legal(model, &candidate) && still_fails(&candidate) {
                best = candidate;
                break;
            }
        }
        // Phase 2: un-drop fragments whose loss the failure does not need.
        let pending = self.pending(model, best.point);
        for &i in &pending {
            let full = self.full_mask(i);
            if best.survivors.iter().any(|s| s.frag == i && s.unit_mask == full) {
                continue;
            }
            let mut candidate = best.clone();
            candidate.survivors.retain(|s| s.frag != i);
            candidate.survivors.push(Survivor { frag: i, unit_mask: full });
            candidate.survivors.sort_unstable_by_key(|s| s.frag);
            if self.is_legal(model, &candidate) && still_fails(&candidate) {
                best = candidate;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::ShadowPmem;
    use persist_mem::PmemBackend;

    /// store A; flush A; fence; store B (pending at end).
    fn simple_recording() -> Recording {
        let mut s = ShadowPmem::new();
        s.store_u64(MemAddr::persistent(0), 1);
        s.persist(MemAddr::persistent(0), 8);
        s.store_u64(MemAddr::persistent(64), 2);
        s.into_recording()
    }

    #[test]
    fn durability_rules() {
        let rec = simple_recording();
        let fs = FragmentSet::build(&rec, AtomicPersistSize::default());
        assert_eq!(fs.fragments().len(), 2);
        // After all 4 events: A durable under every model, B pending.
        for model in Model::ALL {
            assert_eq!(fs.pending(model, 4), vec![1], "{model}");
        }
        // Before the fence (point 2) nothing is durable.
        assert_eq!(fs.pending(Model::Epoch, 2), vec![0]);
        // Strict's fence-only rule also needs the fence executed.
        assert_eq!(fs.pending(Model::Strict, 2), vec![0]);
    }

    #[test]
    fn strict_draw_is_prefix() {
        let mut s = ShadowPmem::new();
        for i in 0..4u64 {
            s.store_u64(MemAddr::persistent(i * 64), i);
        }
        let rec = s.into_recording();
        let fs = FragmentSet::build(&rec, AtomicPersistSize::default());
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let case = fs.draw(Model::Strict, 4, &mut rng, false);
            assert!(fs.is_legal(Model::Strict, &case));
            // Prefix property: kept indices are contiguous from 0.
            let idx: Vec<usize> = case.survivors.iter().map(|s| s.frag).collect();
            assert_eq!(idx, (0..idx.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn epoch_draw_is_downward_closed() {
        let mut s = ShadowPmem::new();
        s.store_u64(MemAddr::persistent(0), 1); // epoch 0
        s.fence();
        s.store_u64(MemAddr::persistent(64), 2); // epoch 1
        s.fence();
        s.store_u64(MemAddr::persistent(128), 3); // epoch 2
        let rec = s.into_recording();
        let fs = FragmentSet::build(&rec, AtomicPersistSize::default());
        let mut rng = SmallRng::seed_from_u64(2);
        // No flushes at all: everything stays pending under epoch rules.
        for _ in 0..200 {
            let case = fs.draw(Model::Epoch, 5, &mut rng, false);
            assert!(fs.is_legal(Model::Epoch, &case));
            let kept: Vec<usize> = case.survivors.iter().map(|s| s.frag).collect();
            if kept.contains(&2) {
                assert!(kept.contains(&1) && kept.contains(&0), "not closed: {kept:?}");
            }
            if kept.contains(&1) {
                assert!(kept.contains(&0), "not closed: {kept:?}");
            }
        }
    }

    #[test]
    fn materialize_applies_durable_and_survivors() {
        let rec = simple_recording();
        let fs = FragmentSet::build(&rec, AtomicPersistSize::default());
        let a = MemAddr::persistent(0);
        let b = MemAddr::persistent(64);
        // Drop the pending store entirely.
        let img = fs.materialize(&rec.base, Model::Epoch, &CrashCase { point: 4, survivors: vec![] });
        assert_eq!(img.read_u64(a).unwrap(), 1);
        assert_eq!(img.read_u64(b).unwrap(), 0);
        // Keep it.
        let case = CrashCase { point: 4, survivors: vec![Survivor { frag: 1, unit_mask: 1 }] };
        let img = fs.materialize(&rec.base, Model::Epoch, &case);
        assert_eq!(img.read_u64(b).unwrap(), 2);
    }

    #[test]
    fn torn_masks_apply_partial_units() {
        let mut s = ShadowPmem::new();
        s.store(MemAddr::persistent(0), &[0xAA; 16]); // 2 units in one line
        let rec = s.into_recording();
        let fs = FragmentSet::build(&rec, AtomicPersistSize::default());
        let case = CrashCase { point: 1, survivors: vec![Survivor { frag: 0, unit_mask: 0b10 }] };
        assert!(fs.is_legal(Model::Strict, &case));
        let img = fs.materialize(&rec.base, Model::Strict, &case);
        assert_eq!(img.read_u64(MemAddr::persistent(0)).unwrap(), 0);
        assert_eq!(img.read_u64(MemAddr::persistent(8)).unwrap(), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(fs.dropped_lines(Model::Strict, &case), vec![0]);
    }

    #[test]
    fn illegal_cases_are_rejected() {
        let mut s = ShadowPmem::new();
        s.store_u64(MemAddr::persistent(0), 1);
        s.store_u64(MemAddr::persistent(64), 2);
        let rec = s.into_recording();
        let fs = FragmentSet::build(&rec, AtomicPersistSize::default());
        // Keeping the later store while dropping the earlier breaks
        // strict's prefix rule but is fine under strict-rmo (two lines).
        let case = CrashCase { point: 2, survivors: vec![Survivor { frag: 1, unit_mask: 1 }] };
        assert!(!fs.is_legal(Model::Strict, &case));
        assert!(fs.is_legal(Model::StrictRmo, &case));
    }

    #[test]
    fn shrink_finds_minimal_point_and_drops() {
        // Failure condition: B's line (line 1) dropped while C's (line 2)
        // survived — needs C kept and B dropped; A is irrelevant.
        let mut s = ShadowPmem::new();
        s.store_u64(MemAddr::persistent(0), 1); // A, line 0
        s.store_u64(MemAddr::persistent(64), 2); // B, line 1
        s.store_u64(MemAddr::persistent(128), 3); // C, line 2
        let rec = s.into_recording();
        let fs = FragmentSet::build(&rec, AtomicPersistSize::default());
        let base = rec.base.clone();
        let fails = |case: &CrashCase| {
            let img = fs.materialize(&base, Model::StrictRmo, case);
            img.read_u64(MemAddr::persistent(128)).unwrap() == 3
                && img.read_u64(MemAddr::persistent(64)).unwrap() == 0
        };
        let all_dropped_but_c = CrashCase {
            point: 3,
            survivors: vec![Survivor { frag: 2, unit_mask: 1 }],
        };
        assert!(fails(&all_dropped_but_c));
        let shrunk = fs.shrink(Model::StrictRmo, &all_dropped_but_c, fails);
        assert_eq!(shrunk.point, 3, "C's store must have executed");
        // A was un-dropped (irrelevant to the failure); B stays dropped.
        assert!(shrunk.survivors.iter().any(|s| s.frag == 0));
        assert!(!shrunk.survivors.iter().any(|s| s.frag == 1));
        assert_eq!(fs.dropped_lines(Model::StrictRmo, &shrunk), vec![1]);
    }
}
