//! Fuzz targets: the native persistence protocols under test.
//!
//! A target bundles a workload (run against the shadow backend with
//! [`ShadowPmem::op_begin`] / [`ShadowPmem::op_end`] brackets), the
//! structure's *real* recovery entry point, and a post-recovery invariant
//! plus linearizable-prefix durability check. The injector calls them in
//! that order on every materialized crash image.
//!
//! Recovery is expressed as a [`RecoveryStep`] script so the injector can
//! crash *recovery itself* (multi-crash): the queues and the KV table
//! recover read-only (empty script — validation only), the undo log
//! returns its rollback writes.
//!
//! The durability check is the paper's recovery criterion specialized per
//! structure: every operation whose `OpEnd` preceded the crash must be
//! visible after recovery, no operation that never began may be, and the
//! in-flight window in between may land either way (atomically, for the
//! transaction target).

use crate::shadow::ShadowPmem;
use persist_mem::{MemAddr, MemoryImage, PmemBackend, CACHE_LINE_BYTES};
use pqueue::pmem::{PmemBarrierMode, PmemCwlQueue, PmemTwoLockQueue};
use pqueue::recovery;
use pqueue::traced::{QueueLayout, QueueParams};
use pstruct::kv::PersistentKv;
use pstruct::txn::{RecoveryStep, UndoLog};

/// A crash-fuzzable persistent structure.
///
/// Targets are stateless between calls (`Send + Sync`), so one boxed
/// target can serve injection shards running on several worker threads.
pub trait FuzzTarget: Send + Sync {
    /// Short name used in reports (`cwl`, `2lc`, `kv`, …).
    fn name(&self) -> &'static str;

    /// Runs `ops` logical operations against `mem`, bracketing each with
    /// `op_begin` / `op_end`.
    fn run(&self, mem: &mut ShadowPmem, ops: u64);

    /// The structure's real recovery on a post-crash image, expressed as
    /// the persistent writes it performs (empty for read-only recovery).
    ///
    /// # Errors
    ///
    /// An `Err` means recovery itself rejected the image — for the stock
    /// protocols that is a crash-consistency failure.
    fn recovery_script(&self, image: &MemoryImage) -> Result<Vec<RecoveryStep>, String>;

    /// Checks invariants and operation durability on the *recovered*
    /// image: `completed` operations finished before the crash (all must
    /// be visible), `begun` operations had started (`begun - completed`
    /// are in flight and may land either way).
    ///
    /// # Errors
    ///
    /// An `Err` describes the violated invariant.
    fn check(&self, image: &MemoryImage, completed: u64, begun: u64) -> Result<(), String>;
}

/// Standard layout for the queue targets: head pointer in the first cache
/// line, data segment right after.
fn queue_layout(capacity: u64, margin: u64) -> QueueLayout {
    QueueLayout {
        head: MemAddr::persistent(0),
        data: MemAddr::persistent(CACHE_LINE_BYTES),
        params: QueueParams::new(capacity).with_recovery_margin(margin),
    }
}

/// Shared queue durability check: the persisted head must cover every
/// completed insert and claim nothing that never began. Structural
/// validation of the entries the head covers is recovery's job
/// ([`recovery::recover_head`] in `recovery_script`), which the injector
/// always runs first on the same image — the check reads the head alone.
fn check_queue_head(
    image: &MemoryImage,
    layout: &QueueLayout,
    completed: u64,
    begun: u64,
) -> Result<(), String> {
    let head_bytes = image.read_u64(layout.head).map_err(|e| e.to_string())?;
    let slot = QueueParams::SLOT_BYTES;
    if head_bytes < completed * slot {
        return Err(format!(
            "durability: {completed} inserts completed but head {head_bytes} covers only {}",
            head_bytes / slot
        ));
    }
    if head_bytes > begun * slot {
        return Err(format!(
            "phantom inserts: head {head_bytes} covers {} entries but only {begun} ever began",
            head_bytes / slot
        ));
    }
    Ok(())
}

/// Copy While Locked (Algorithm 1), with selectable barrier placement —
/// [`PmemBarrierMode::Elided`] is the known-buggy specimen.
pub struct CwlTarget {
    layout: QueueLayout,
    mode: PmemBarrierMode,
}

impl CwlTarget {
    /// The stock protocol.
    pub fn new() -> Self {
        CwlTarget { layout: queue_layout(8, 1), mode: PmemBarrierMode::Full }
    }

    /// The barrier-elided variant the injector must catch.
    pub fn elided() -> Self {
        CwlTarget { layout: queue_layout(8, 1), mode: PmemBarrierMode::Elided }
    }
}

impl Default for CwlTarget {
    fn default() -> Self {
        Self::new()
    }
}

impl FuzzTarget for CwlTarget {
    fn name(&self) -> &'static str {
        match self.mode {
            PmemBarrierMode::Full => "cwl",
            PmemBarrierMode::Elided => "cwl-elided",
        }
    }

    fn run(&self, mem: &mut ShadowPmem, ops: u64) {
        let mut q = PmemCwlQueue::new(self.layout, self.mode);
        for j in 0..ops {
            mem.op_begin(j);
            q.insert(mem);
            mem.op_end(j);
        }
    }

    fn recovery_script(&self, image: &MemoryImage) -> Result<Vec<RecoveryStep>, String> {
        recovery::recover_head(image, &self.layout).map(|_| Vec::new())
    }

    fn check(&self, image: &MemoryImage, completed: u64, begun: u64) -> Result<(), String> {
        check_queue_head(image, &self.layout, completed, begun)
    }
}

/// Two-Lock Concurrent: reservations in groups of three, completed out of
/// order (second, third, first), so the persisted head always advances
/// over a contiguous completed prefix with up to three inserts in flight.
pub struct TwoLockTarget {
    layout: QueueLayout,
}

impl TwoLockTarget {
    /// The stock protocol. Margin 3: after a wrap, all three in-flight
    /// completions may be mid-overwrite of the oldest window slots.
    pub fn new() -> Self {
        TwoLockTarget { layout: queue_layout(8, 3) }
    }
}

impl Default for TwoLockTarget {
    fn default() -> Self {
        Self::new()
    }
}

impl FuzzTarget for TwoLockTarget {
    fn name(&self) -> &'static str {
        "2lc"
    }

    fn run(&self, mem: &mut ShadowPmem, ops: u64) {
        let mut q = PmemTwoLockQueue::new(self.layout);
        let slot = QueueParams::SLOT_BYTES;
        let mut ended = 0u64;
        let mut next = 0u64;
        while next < ops {
            let group = (ops - next).min(3);
            let starts: Vec<u64> = (next..next + group)
                .map(|id| {
                    mem.op_begin(id);
                    q.reserve()
                })
                .collect();
            // Complete out of reservation order; an op ends once the
            // persisted head covers its slot.
            let order: &[usize] = if group == 3 { &[1, 2, 0] } else { &[0, 1][..group as usize] };
            for &i in order {
                let head = q.complete(mem, starts[i]);
                while (ended + 1) * slot <= head {
                    mem.op_end(ended);
                    ended += 1;
                }
            }
            next += group;
        }
    }

    fn recovery_script(&self, image: &MemoryImage) -> Result<Vec<RecoveryStep>, String> {
        recovery::recover_head(image, &self.layout).map(|_| Vec::new())
    }

    fn check(&self, image: &MemoryImage, completed: u64, begun: u64) -> Result<(), String> {
        check_queue_head(image, &self.layout, completed, begun)
    }
}

/// The persistent KV table under a fixed put/remove script over eight
/// keys, checked against a logical replay of the completed prefix.
pub struct KvTarget {
    kv: PersistentKv,
}

impl KvTarget {
    /// A 32-bucket table at the start of the persistent space.
    pub fn new() -> Self {
        KvTarget { kv: PersistentKv::from_raw(MemAddr::persistent(0), 32) }
    }

    /// The scripted operation `j`: `Some(value)` = put, `None` = remove.
    fn op(j: u64) -> (u64, Option<u64>) {
        let key = 1 + j % 8;
        if j % 4 == 3 {
            (key, None)
        } else {
            (key, Some(1000 + j))
        }
    }

    /// The map a crash-free prefix of `n` operations leaves behind,
    /// indexed by key (keys are 1..=8; slot 0 is unused). A fixed array
    /// instead of a map: `check` runs once per injection, and the fuzz
    /// loop injects hundreds of thousands of crashes per second.
    fn expected_after(n: u64) -> [Option<u64>; 9] {
        let mut m = [None; 9];
        for j in 0..n {
            let (k, v) = Self::op(j);
            m[k as usize] = v;
        }
        m
    }
}

impl Default for KvTarget {
    fn default() -> Self {
        Self::new()
    }
}

impl FuzzTarget for KvTarget {
    fn name(&self) -> &'static str {
        "kv"
    }

    fn run(&self, mem: &mut ShadowPmem, ops: u64) {
        for j in 0..ops {
            mem.op_begin(j);
            match Self::op(j) {
                (k, Some(v)) => {
                    self.kv.put_pmem(mem, k, v);
                }
                (k, None) => {
                    self.kv.remove_pmem(mem, k);
                }
            }
            mem.op_end(j);
        }
    }

    fn recovery_script(&self, image: &MemoryImage) -> Result<Vec<RecoveryStep>, String> {
        self.kv.recover_each(image, |_, _| {}).map(|()| Vec::new())
    }

    fn check(&self, image: &MemoryImage, completed: u64, begun: u64) -> Result<(), String> {
        let mut recovered = [None; 9];
        let mut bad: Option<String> = None;
        self.kv.recover_each(image, |k, v| {
            if bad.is_some() {
                return;
            }
            match recovered.get_mut(k as usize) {
                Some(slot @ None) => *slot = Some(v),
                Some(Some(_)) => bad = Some(format!("key {k} recovered from two buckets")),
                None => bad = Some(format!("recovered key {k} was never written")),
            }
        })?;
        if let Some(msg) = bad {
            return Err(msg);
        }
        let expected = Self::expected_after(completed);
        // The in-flight operation's key may be before, after, or mid-update
        // (absent); every other key must match the completed prefix.
        let in_flight = (begun > completed).then(|| Self::op(completed).0);
        let after = Self::expected_after(completed + 1);
        for key in 1..=8usize {
            let got = recovered[key];
            let want = expected[key];
            if Some(key as u64) == in_flight {
                let ok = got == want || got == after[key] || got.is_none();
                if !ok {
                    return Err(format!(
                        "in-flight key {key}: recovered {got:?}, expected {want:?} or {:?} or absent",
                        after[key]
                    ));
                }
            } else if got != want {
                return Err(format!(
                    "key {key}: recovered {got:?} but the completed prefix of {completed} ops gives {want:?}"
                ));
            }
        }
        Ok(())
    }
}

/// The undo log running alternating transfers between two accounts; the
/// atomicity invariant is the classic `a + b` conservation. Recovery
/// *writes* (rollback), so this is the multi-crash target.
pub struct TxnTarget {
    log: UndoLog,
    a: MemAddr,
    b: MemAddr,
}

impl TxnTarget {
    /// Log header at 0, entries at 64 (capacity 8), accounts at 4096/4160.
    pub fn new() -> Self {
        TxnTarget {
            log: UndoLog::from_raw(MemAddr::persistent(0), MemAddr::persistent(64), 8),
            a: MemAddr::persistent(4096),
            b: MemAddr::persistent(4160),
        }
    }

    /// Account state after `transfers` completed transfers.
    fn expected(transfers: u64) -> (u64, u64) {
        if transfers % 2 == 1 {
            (90, 10)
        } else {
            (100, 0)
        }
    }
}

impl Default for TxnTarget {
    fn default() -> Self {
        Self::new()
    }
}

impl FuzzTarget for TxnTarget {
    fn name(&self) -> &'static str {
        "txn"
    }

    fn run(&self, mem: &mut ShadowPmem, ops: u64) {
        // Op 0 initializes the accounts; ops 1.. are alternating transfers.
        mem.op_begin(0);
        mem.strand();
        mem.store_u64(self.a, 100);
        mem.flush(self.a, 8);
        mem.store_u64(self.b, 0);
        mem.flush(self.b, 8);
        mem.fence();
        mem.op_end(0);
        for j in 1..ops {
            mem.op_begin(j);
            let mut txn = self.log.begin_pmem(mem);
            let (av, bv) = (mem.load_u64(self.a), mem.load_u64(self.b));
            if j % 2 == 1 {
                txn.write(mem, self.a, av - 10);
                txn.write(mem, self.b, bv + 10);
            } else {
                txn.write(mem, self.a, av + 10);
                txn.write(mem, self.b, bv - 10);
            }
            txn.commit(mem);
            mem.op_end(j);
        }
    }

    fn recovery_script(&self, image: &MemoryImage) -> Result<Vec<RecoveryStep>, String> {
        self.log.recovery_script(image)
    }

    fn check(&self, image: &MemoryImage, completed: u64, begun: u64) -> Result<(), String> {
        let status = image.read_u64(MemAddr::persistent(0)).map_err(|e| e.to_string())?;
        let count = image.read_u64(MemAddr::persistent(8)).map_err(|e| e.to_string())?;
        if status != 0 || count != 0 {
            return Err(format!(
                "log not reset after recovery: status {status}, count {count}"
            ));
        }
        let av = image.read_u64(self.a).map_err(|e| e.to_string())?;
        let bv = image.read_u64(self.b).map_err(|e| e.to_string())?;
        if completed == 0 {
            // Initialization may be in flight: b untouched, a either side.
            if !(av == 0 || av == 100) || bv != 0 {
                return Err(format!("mid-init accounts ({av}, {bv})"));
            }
            return Ok(());
        }
        if av + bv != 100 {
            return Err(format!("atomicity: a + b = {av} + {bv} != 100"));
        }
        // `completed` ops = init + (completed - 1) transfers.
        let settled = Self::expected(completed - 1);
        let in_flight = Self::expected(completed);
        let ok = (av, bv) == settled || (begun > completed && (av, bv) == in_flight);
        if !ok {
            return Err(format!(
                "accounts ({av}, {bv}) match neither {settled:?} (completed) nor {in_flight:?} (in-flight)"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use persist_mem::DirectPmem;

    /// Runs a target crash-free through the shadow, recovers the final
    /// image, and checks with everything completed.
    fn crash_free(target: &dyn FuzzTarget, ops: u64) {
        let mut mem = ShadowPmem::new();
        target.run(&mut mem, ops);
        let rec = mem.into_recording();
        let (completed, begun) = rec.ops_at(rec.events.len());
        assert_eq!(completed, ops);
        assert_eq!(begun, ops);
        let script = target.recovery_script(&rec.final_image).expect("clean recovery");
        let mut img = rec.final_image.clone();
        for step in script {
            if let RecoveryStep::Write { addr, value } = step {
                img.write_u64(addr, value).unwrap();
            }
        }
        target.check(&img, completed, begun).expect("crash-free state checks");
    }

    #[test]
    fn all_targets_pass_crash_free() {
        let targets: Vec<Box<dyn FuzzTarget>> = vec![
            Box::new(CwlTarget::new()),
            Box::new(CwlTarget::elided()),
            Box::new(TwoLockTarget::new()),
            Box::new(KvTarget::new()),
            Box::new(TxnTarget::new()),
        ];
        for t in &targets {
            crash_free(t.as_ref(), 17);
        }
    }

    #[test]
    fn queue_check_rejects_lost_completed_insert() {
        let t = CwlTarget::new();
        let mut mem = ShadowPmem::new();
        t.run(&mut mem, 4);
        let rec = mem.into_recording();
        // Claim 4 completed but hand over an image whose head covers 4 —
        // fine; then claim 5 completed — durability violation.
        t.check(&rec.final_image, 4, 4).unwrap();
        assert!(t.check(&rec.final_image, 5, 5).unwrap_err().contains("durability"));
    }

    #[test]
    fn kv_check_tracks_logical_replay() {
        let t = KvTarget::new();
        let mut mem = ShadowPmem::new();
        t.run(&mut mem, 12);
        let rec = mem.into_recording();
        t.check(&rec.final_image, 12, 12).unwrap();
        // Claiming fewer completed ops than actually ran must fail: op 11
        // (remove of key 4) would then wrongly be visible.
        assert!(t.check(&rec.final_image, 10, 10).is_err());
    }

    #[test]
    fn txn_check_enforces_conservation() {
        let t = TxnTarget::new();
        let mut direct = DirectPmem::new();
        direct.store_u64(t.a, 95);
        direct.store_u64(t.b, 0);
        let err = t.check(direct.image(), 3, 3).unwrap_err();
        assert!(err.contains("atomicity"), "{err}");
    }
}
