//! Delta replay: O(pending lines) crash-image materialization.
//!
//! [`FragmentSet::materialize`] builds each post-crash image from scratch:
//! clone the base image, walk *every* fragment, apply the durable and
//! surviving ones. That is O(image bytes + total fragments) per injection,
//! and the fuzz loop runs thousands of injections against one recording.
//!
//! [`Replayer`] replaces that with a checkpoint ladder built once per
//! recording:
//!
//! - the op script's stores are grouped per cache line, and each line
//!   keeps a ladder of cumulative snapshots — the line's bytes after its
//!   first `k` fragments have persisted — plus each fragment's *qualify
//!   point* (the crash point from which the model guarantees it durable);
//! - qualify points are monotone in store order within a line (a later
//!   overlapping store can never be durable before an earlier one — its
//!   flush/fence covers both), so the durable fragments of a line at any
//!   crash point are exactly a prefix of its ladder, and the durable line
//!   content is a single O(line) snapshot copy;
//! - one scratch [`MemoryImage`] (a clone of the recording's base) is
//!   reused across injections as a copy-on-write overlay: materializing
//!   writes only the lines the crash touches and logs an undo region per
//!   write, and [`Replayer::reset`] restores those regions from the base
//!   and truncates the image back to the base extent.
//!
//! The result is byte-identical to clone-and-replay — same bytes *and*
//! same extents, so images compare equal — at O(touched lines) per
//! injection instead of O(image + fragments). The differential tests in
//! `tests/delta_replay.rs` check this against the oracle for every model,
//! torn persists included.

use crate::inject::{CrashCase, FragmentSet};
use crate::shadow::{Recording, ShadowEvent};
use persist_mem::{FxHashMap, MemAddr, MemoryImage, Space, CACHE_LINE_BYTES};
use persistency::Model;
use pstruct::txn::RecoveryStep;

/// One cache line's checkpoint ladder.
#[derive(Debug, Clone)]
struct LineLadder {
    /// Persistent offset of the line's first byte.
    start: u64,
    /// Qualify point per fragment (crash points `>= q` see it durable);
    /// `u32::MAX` for fragments the model never makes durable.
    /// Nondecreasing — see the module docs.
    q: Vec<u32>,
    /// Cumulative max end offset (line-relative) after the first `k + 1`
    /// fragments; the ladder write covers `[0, span_hi[k])`.
    span_hi: Vec<u32>,
    /// Snapshot `k` at `snap[k * LINE .. (k + 1) * LINE]`: the line after
    /// its first `k + 1` fragments applied over the base.
    snap: Vec<u8>,
}

/// Reusable delta-replay state for one `(recording, model)` pair.
///
/// Build once, then per injection: [`Replayer::load`], read the image,
/// optionally [`Replayer::apply_recovery`], then [`Replayer::reset`].
#[derive(Debug)]
pub struct Replayer<'a> {
    frags: &'a FragmentSet,
    base: &'a MemoryImage,
    lines: Vec<LineLadder>,
    /// `(q of the line's first fragment, index into lines)`, sorted: the
    /// lines durable-touched at point `p` are the prefix with `q <= p`.
    by_first_q: Vec<(u32, u32)>,
    /// `(completed, begun)` operation counts before each event index.
    ops_prefix: Vec<(u64, u64)>,
    image: MemoryImage,
    /// Regions written since the last reset, restored from `base`.
    undo: Vec<(MemAddr, u32)>,
    base_extent: (u64, u64),
    dirty: bool,
}

impl<'a> Replayer<'a> {
    /// Builds the checkpoint ladder for `rec`'s fragments under `model`.
    pub fn new(frags: &'a FragmentSet, rec: &'a Recording, model: Model) -> Self {
        let line_sz = CACHE_LINE_BYTES as usize;
        let mut lines: Vec<LineLadder> = Vec::new();
        let mut index: FxHashMap<u64, u32> = FxHashMap::default();
        for f in frags.fragments() {
            let li = *index.entry(f.line).or_insert_with(|| {
                let start = f.line * CACHE_LINE_BYTES;
                let mut snap = vec![0u8; line_sz];
                rec.base
                    .read(MemAddr::persistent(start), &mut snap)
                    .expect("line in range");
                lines.push(LineLadder { start, q: Vec::new(), span_hi: Vec::new(), snap });
                (lines.len() - 1) as u32
            });
            let lad = &mut lines[li as usize];
            let q = f.durable_at(model).map_or(u32::MAX, |e| e as u32 + 1);
            debug_assert!(
                lad.q.last().is_none_or(|&prev| prev <= q),
                "durability must be monotone in store order within a line"
            );
            // Snapshot k = snapshot k-1 (or the base line) + this fragment.
            let prev = lad.snap.len() - line_sz;
            lad.snap.extend_from_within(prev..);
            let rel = (f.addr.offset() - lad.start) as usize;
            let k = lad.snap.len() - line_sz;
            lad.snap[k + rel..k + rel + f.data.len()].copy_from_slice(&f.data);
            let hi = (rel + f.data.len()) as u32;
            lad.q.push(q);
            lad.span_hi.push(lad.span_hi.last().map_or(hi, |&p| p.max(hi)));
        }
        for lad in &mut lines {
            // Drop the base-line scratch row: snapshot k lives at row k.
            lad.snap.drain(..line_sz);
        }
        let mut by_first_q: Vec<(u32, u32)> =
            lines.iter().enumerate().map(|(i, l)| (l.q[0], i as u32)).collect();
        by_first_q.sort_unstable();

        let mut ops_prefix = Vec::with_capacity(rec.events.len() + 1);
        let (mut completed, mut begun) = (0u64, 0u64);
        ops_prefix.push((completed, begun));
        for e in &rec.events {
            match e {
                ShadowEvent::OpBegin(_) => begun += 1,
                ShadowEvent::OpEnd(_) => completed += 1,
                _ => {}
            }
            ops_prefix.push((completed, begun));
        }

        let base_extent = (rec.base.extent(Space::Volatile), rec.base.extent(Space::Persistent));
        Replayer {
            frags,
            base: &rec.base,
            lines,
            by_first_q,
            ops_prefix,
            image: rec.base.clone(),
            undo: Vec::new(),
            base_extent,
            dirty: false,
        }
    }

    /// Operations `(completed, begun)` before event index `point` — the
    /// precomputed equivalent of [`Recording::ops_at`].
    pub fn ops_at(&self, point: usize) -> (u64, u64) {
        self.ops_prefix[point.min(self.ops_prefix.len() - 1)]
    }

    /// The current materialized image.
    pub fn image(&self) -> &MemoryImage {
        &self.image
    }

    /// Materializes `case` into the scratch image: the durable snapshot of
    /// every touched line plus the surviving units. Byte-identical to
    /// [`FragmentSet::materialize`] over the same base.
    pub fn load(&mut self, case: &CrashCase) {
        if self.dirty {
            self.reset();
        }
        self.dirty = true;
        let line_sz = CACHE_LINE_BYTES as usize;
        let p = case.point as u32;
        let n = self.by_first_q.partition_point(|&(q, _)| q <= p);
        for &(_, li) in &self.by_first_q[..n] {
            let lad = &self.lines[li as usize];
            let k = lad.q.partition_point(|&q| q <= p);
            let hi = lad.span_hi[k - 1] as usize;
            let addr = MemAddr::persistent(lad.start);
            self.image
                .write(addr, &lad.snap[(k - 1) * line_sz..(k - 1) * line_sz + hi])
                .expect("ladder line in range");
            self.undo.push((addr, hi as u32));
        }
        // Survivors are sorted by fragment index, and within a line every
        // pending fragment follows every durable one, so applying them
        // after the ladder writes reproduces store order exactly.
        let unit_sz = self.frags.unit();
        let unit = unit_sz as usize;
        for s in &case.survivors {
            let f = &self.frags.fragments()[s.frag];
            for u in 0..f.units(unit_sz) {
                if s.unit_mask & (1 << u) == 0 {
                    continue;
                }
                let lo = u as usize * unit;
                let hi = (lo + unit).min(f.data.len());
                let a = f.addr.add(lo as u64);
                self.image.write(a, &f.data[lo..hi]).expect("survivor in range");
                self.undo.push((a, (hi - lo) as u32));
            }
        }
    }

    /// Applies a recovery script's writes on top of the loaded image
    /// (barriers are ordering-only), keeping them undoable.
    pub fn apply_recovery(&mut self, script: &[RecoveryStep]) {
        for step in script {
            if let RecoveryStep::Write { addr, value } = step {
                self.undo.push((*addr, 8));
                self.image.write_u64(*addr, *value).expect("recovery write in range");
            }
        }
    }

    /// Restores the scratch image to the recording's base: every region
    /// written since the last reset is copied back from the base and the
    /// image is truncated to the base extent. O(written regions).
    pub fn reset(&mut self) {
        let mut buf = [0u8; CACHE_LINE_BYTES as usize];
        for &(addr, len) in &self.undo {
            let b = &mut buf[..len as usize];
            self.base.read(addr, b).expect("undo region in range");
            self.image.write(addr, b).expect("undo region in range");
        }
        self.undo.clear();
        self.image.truncate(Space::Volatile, self.base_extent.0);
        self.image.truncate(Space::Persistent, self.base_extent.1);
        self.dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::ShadowPmem;
    use mem_trace::rng::SmallRng;
    use persist_mem::{AtomicPersistSize, PmemBackend};

    fn recording() -> Recording {
        let mut s = ShadowPmem::new();
        s.op_begin(0);
        s.store_u64(MemAddr::persistent(0), 1);
        s.persist(MemAddr::persistent(0), 8);
        s.op_end(0);
        s.op_begin(1);
        s.store_u64(MemAddr::persistent(8), 2); // same line as the first
        s.store_u64(MemAddr::persistent(64), 3);
        s.persist(MemAddr::persistent(64), 8);
        s.into_recording()
    }

    #[test]
    fn matches_oracle_and_resets_clean() {
        let rec = recording();
        let frags = FragmentSet::build(&rec, AtomicPersistSize::default());
        for model in Model::ALL {
            let mut r = Replayer::new(&frags, &rec, model);
            let mut rng = SmallRng::seed_from_u64(9);
            for point in 0..=rec.events.len() {
                for _ in 0..8 {
                    let case = frags.draw(model, point, &mut rng, true);
                    r.load(&case);
                    let oracle = frags.materialize(&rec.base, model, &case);
                    assert_eq!(r.image(), &oracle, "{model} point {point}");
                    r.reset();
                    assert_eq!(r.image(), &rec.base, "{model} reset");
                }
            }
        }
    }

    #[test]
    fn ops_prefix_matches_scan() {
        let rec = recording();
        let frags = FragmentSet::build(&rec, AtomicPersistSize::default());
        let r = Replayer::new(&frags, &rec, Model::Epoch);
        for p in 0..=rec.events.len() + 2 {
            assert_eq!(r.ops_at(p), rec.ops_at(p));
        }
    }

    #[test]
    fn recovery_writes_are_undone() {
        let rec = recording();
        let frags = FragmentSet::build(&rec, AtomicPersistSize::default());
        let mut r = Replayer::new(&frags, &rec, Model::Strict);
        let case = CrashCase { point: rec.events.len(), survivors: vec![] };
        r.load(&case);
        r.apply_recovery(&[
            RecoveryStep::Write { addr: MemAddr::persistent(128), value: 7 },
            RecoveryStep::Barrier,
        ]);
        assert_eq!(r.image().read_u64(MemAddr::persistent(128)).unwrap(), 7);
        r.reset();
        assert_eq!(r.image(), &rec.base);
    }
}
